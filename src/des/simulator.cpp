#include "des/simulator.hpp"

#include <algorithm>
#include <cmath>

namespace aiac::des {

EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (!(t >= now_) || std::isnan(t))
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  const std::uint64_t seq = next_sequence_++;
  queue_.push(Event{t, seq, std::move(fn)});
  return EventId{seq};
}

EventId Simulator::schedule_after(SimTime delay, std::function<void()> fn) {
  if (!(delay >= 0.0) || std::isnan(delay))
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::is_cancelled(std::uint64_t seq) const noexcept {
  return std::find(cancelled_.begin(), cancelled_.end(), seq) !=
         cancelled_.end();
}

bool Simulator::cancel(EventId id) {
  if (id.value == 0 || id.value >= next_sequence_) return false;
  if (is_cancelled(id.value)) return false;
  cancelled_.push_back(id.value);
  ++cancelled_in_queue_;
  return true;
}

bool Simulator::step() {
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top returns const&; move out via const_cast is the
    // standard idiom to avoid copying the std::function.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (is_cancelled(ev.sequence)) {
      cancelled_.erase(
          std::remove(cancelled_.begin(), cancelled_.end(), ev.sequence),
          cancelled_.end());
      --cancelled_in_queue_;
      continue;
    }
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (step()) {
    if (budget-- == 0)
      throw std::runtime_error("Simulator::run: event budget exhausted");
  }
}

void Simulator::run_until(SimTime t_end, std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (!queue_.empty() && !stopped_) {
    // Peek at the next non-cancelled event's time.
    if (queue_.top().time > t_end) break;
    if (!step()) break;
    if (budget-- == 0)
      throw std::runtime_error("Simulator::run_until: event budget exhausted");
  }
  if (!stopped_) now_ = std::max(now_, t_end);
}

}  // namespace aiac::des
