// Virtual-time engine: executes the (optionally load-balanced) parallel
// iterative algorithm of the paper on a simulated grid.
//
// The numerical work is real — each virtual processor owns a WaveformBlock
// and performs genuine Newton/implicit-Euler computation — while time is
// accounted by a deterministic discrete-event simulation: an iteration
// that consumed `w` Newton work units on processor p started at virtual
// time t occupies [t, t + w / effective_speed_p(t)); a message of b bytes
// from p to q sent at t arrives at t + latency + b/bandwidth (jittered).
// See DESIGN.md for why this substitution preserves the paper's
// measurements on a single-core host.
//
// Scheme semantics (paper §1.2):
//  * SISC — a processor starts iteration k+1 only after receiving both
//    neighbors' iteration-k boundary data, all of which is sent at the end
//    of an iteration.
//  * SIAC — same readiness rule, but the leftward data leaves early in the
//    iteration (partial overlap of communication by computation).
//  * AIAC — a processor starts its next iteration immediately with
//    whatever data has arrived; sends are skipped while a previous send on
//    the same link is still in flight (the paper's mutual-exclusion
//    variant, Fig. 4).
#pragma once

#include "core/config.hpp"
#include "grid/grid.hpp"
#include "ode/ode_system.hpp"
#include "trace/execution_trace.hpp"

namespace aiac::core {

/// Runs the configured scheme on `grid` (one logical processor per grid
/// rank, organized as a chain over the component space) and returns the
/// measurements. If `trace` is non-null, iteration/message/migration
/// records are appended to it.
EngineResult run_simulated(const ode::OdeSystem& system, grid::Grid& grid,
                           const EngineConfig& config,
                           trace::ExecutionTrace* trace = nullptr);

}  // namespace aiac::core
