#include "core/thread_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

#include "lb/iterative_schemes.hpp"
#include "ode/waveform.hpp"
#include "ode/waveform_block.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/notifier.hpp"
#include "runtime/thread_team.hpp"
#include "trace/execution_trace.hpp"
#include "util/log.hpp"

namespace aiac::core {

namespace {

using Clock = std::chrono::steady_clock;

struct ThreadProc {
  std::unique_ptr<ode::WaveformBlock> block;
  std::mutex block_mutex;  // Algorithm 7: "if not accessing data array"
  runtime::Notifier notifier;
  runtime::SlotBox<ode::BoundaryMessage> from_left{&notifier};
  runtime::SlotBox<ode::BoundaryMessage> from_right{&notifier};
  runtime::Mailbox<ode::MigrationPayload> lb_from_left{&notifier};
  runtime::Mailbox<ode::MigrationPayload> lb_from_right{&notifier};

  std::atomic<std::size_t> iteration{0};
  std::atomic<double> residual{std::numeric_limits<double>::infinity()};
  std::atomic<double> load{0.0};
  std::atomic<bool> locally_converged{false};

  // Thread-local (only the owner touches these).
  std::size_t ok_to_try_lb = 20;
  std::size_t under_tol_streak = 0;
  std::size_t left_data_iteration = 0;
  std::size_t right_data_iteration = 0;
  double left_load = -1.0;   // < 0: unknown
  double right_load = -1.0;
  double last_iteration_seconds = 0.0;
  double last_iteration_work = 0.0;
  double total_work = 0.0;
  std::size_t data_messages = 0;
  std::size_t migrations_out = 0;
  std::size_t components_out = 0;
  std::size_t bytes_out = 0;

  // Famine-guard instrumentation: smallest owned count this processor
  // ever held, sampled after every iteration and right after every
  // migration extraction (the only operations that shrink it).
  std::size_t min_components_seen = 0;
  // Chaos layer (null when disabled): compute stalls + LB-trigger skew.
  runtime::FaultPlan* fault_plan = nullptr;
};

class ThreadEngine {
 public:
  ThreadEngine(const ode::OdeSystem& system, std::size_t processors,
               const EngineConfig& config, trace::ExecutionTrace* trace)
      : system_(system), config_(config), nprocs_(processors), trace_(trace) {
    if (processors == 0)
      throw std::invalid_argument("run_threaded: zero processors");
    estimator_ = lb::make_estimator(config.estimator);
    balancer_ = std::make_unique<lb::NeighborBalancer>(config.balancer);
    stencil_ = system.stencil_halfwidth();
    min_keep_ = std::max(config.balancer.min_components, stencil_ + 1);

    const auto starts = ode::even_partition(system.dimension(), processors);
    procs_ = std::vector<ThreadProc>(processors);
    for (std::size_t p = 0; p < processors; ++p) {
      ode::WaveformBlockConfig bc;
      bc.first = starts[p];
      bc.count = starts[p + 1] - starts[p];
      if (bc.count < stencil_ + 1)
        throw std::invalid_argument(
            "run_threaded: partition too fine for the stencil");
      bc.num_steps = config.num_steps;
      bc.t_end = config.t_end;
      bc.mode = config.solve_mode;
      bc.newton = config.newton;
      bc.receive_filter = config.tolerance * config.receive_filter_factor;
      procs_[p].block = std::make_unique<ode::WaveformBlock>(system, bc);
      procs_[p].ok_to_try_lb = config.balancer.trigger_period;
      procs_[p].min_components_seen = bc.count;
    }
    lb_link_busy_ =
        std::make_unique<std::atomic<bool>[]>(processors > 0 ? processors : 1);
    for (std::size_t i = 0; i + 1 < processors; ++i) lb_link_busy_[i] = false;

    if (config.faults.enabled) {
      injector_ =
          std::make_unique<runtime::FaultInjector>(config.faults, processors);
      if (config.scheme != Scheme::kAIAC) {
        // SISC/SIAC block until the neighbor's iteration-k data arrived;
        // replaying a stale boundary slot would erase the only copy of
        // that data and livelock both ends of the link (the synchronous
        // schemes assume reliable FIFO delivery — see DESIGN.md).
        injector_->disable_stale_replay();
      }
      using Dir = runtime::FaultInjector::Direction;
      for (std::size_t p = 0; p < processors; ++p) {
        procs_[p].fault_plan = injector_->compute_plan(p);
        // A box's hook runs in the pushing thread, so each box gets the
        // plan of the directed channel feeding it.
        if (p > 0) {
          procs_[p].from_left.set_fault_hook(
              injector_->boundary_plan(p - 1, Dir::kToRight));
          procs_[p].lb_from_left.set_fault_hook(
              injector_->lb_plan(p - 1, Dir::kToRight));
        }
        if (p + 1 < processors) {
          procs_[p].from_right.set_fault_hook(
              injector_->boundary_plan(p + 1, Dir::kToLeft));
          procs_[p].lb_from_right.set_fault_hook(
              injector_->lb_plan(p + 1, Dir::kToLeft));
        }
      }
    }
  }

  EngineResult run() {
    const auto t0 = Clock::now();
    {
      runtime::ThreadTeam team;
      team.spawn(nprocs_, [this](std::size_t rank) { worker(rank); });
      team.join();
    }
    const auto t1 = Clock::now();

    EngineResult result;
    result.converged = halt_.load() && !failed_.load();
    result.execution_time = std::chrono::duration<double>(t1 - t0).count();
    // Drain any payload still sitting in a mailbox so the solution covers
    // every component (can only happen on a failure stop).
    for (std::size_t p = 0; p < nprocs_; ++p) {
      while (auto payload = procs_[p].lb_from_left.try_pop())
        procs_[p].block->absorb_from_left(*payload);
      while (auto payload = procs_[p].lb_from_right.try_pop())
        procs_[p].block->absorb_from_right(*payload);
    }
    result.solution = ode::Trajectory(system_.dimension(), config_.num_steps);
    for (auto& proc : procs_) proc.block->copy_local_into(result.solution);
    for (auto& proc : procs_) {
      result.total_iterations += proc.iteration.load();
      result.iterations_per_processor.push_back(proc.iteration.load());
      result.final_components.push_back(proc.block->count());
      result.total_work += proc.total_work;
      result.data_messages += proc.data_messages;
      result.migrations += proc.migrations_out;
      result.components_migrated += proc.components_out;
      result.bytes_sent += proc.bytes_out;
      const double r = proc.residual.load();
      if (!std::isinf(r))
        result.final_max_residual = std::max(result.final_max_residual, r);
    }
    result.lb_messages = result.migrations;
    result.min_components_observed = procs_.empty() ? 0 : SIZE_MAX;
    for (auto& proc : procs_)
      result.min_components_observed =
          std::min(result.min_components_observed, proc.min_components_seen);
    result.detection_gap = detection_gap_;
    result.detection_max_residual = detection_max_residual_;
    if (injector_) {
      result.faults_injected = injector_->log().total();
      if (trace_) {
        for (const auto& event : injector_->log().snapshot()) {
          trace::FaultRecord record;
          record.source = event.source;
          record.time = event.time;
          record.kind = runtime::to_string(event.kind);
          record.magnitude = event.magnitude;
          record.sequence = event.sequence;
          trace_->record_fault(std::move(record));
        }
      }
    }
    return result;
  }

 private:
  void worker(std::size_t p) {
    ThreadProc& proc = procs_[p];
    while (!halt_.load(std::memory_order_acquire)) {
      if (proc.fault_plan) {
        // Transient slow-node stall, served at the iteration boundary
        // where a real machine would lose the core to a competing job.
        const auto stall = proc.fault_plan->compute_stall();
        if (stall.count() > 0) std::this_thread::sleep_for(stall);
      }
      bool external_input = false;
      ode::WaveformBlock::IterationStats stats;
      ode::BoundaryMessage out_left;
      ode::BoundaryMessage out_right;
      {
        std::lock_guard<std::mutex> lock(proc.block_mutex);
        external_input |= absorb_migrations(p, proc);
        external_input |= incorporate_boundaries(p, proc);
        const auto start = Clock::now();
        stats = proc.block->iterate();
        proc.last_iteration_seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (p > 0) out_left = proc.block->boundary_for_left();
        if (p + 1 < nprocs_) out_right = proc.block->boundary_for_right();
      }
      proc.min_components_seen =
          std::min(proc.min_components_seen, proc.block->count());
      proc.last_iteration_work = stats.work;
      proc.total_work += stats.work;
      proc.iteration.fetch_add(1);
      proc.residual.store(stats.residual);
      publish_load(proc);
      if (stats.residual <= config_.tolerance && !external_input)
        ++proc.under_tol_streak;
      else if (stats.residual <= config_.tolerance)
        proc.under_tol_streak = 1;
      else
        proc.under_tol_streak = 0;
      proc.locally_converged.store(proc.under_tol_streak >=
                                   config_.persistence);

      send_boundaries(p, proc, out_left, out_right);
      if (config_.load_balancing) try_load_balance(p, proc);
      if (p == 0) leader_detection();

      if (proc.iteration.load() >= config_.max_iterations_per_processor) {
        failed_.store(true);
        halt_.store(true, std::memory_order_release);
        wake_all();
        break;
      }

      if (config_.scheme == Scheme::kAIAC) {
        idle_if_quiescent(p, proc, stats);
      } else {
        wait_for_neighbor_data(p, proc);
      }
    }
  }

  bool absorb_migrations(std::size_t p, ThreadProc& proc) {
    bool any = false;
    while (auto payload = proc.lb_from_left.try_pop()) {
      proc.block->absorb_from_left(*payload);
      lb_link_busy_[p - 1].store(false);
      any = true;
    }
    while (auto payload = proc.lb_from_right.try_pop()) {
      proc.block->absorb_from_right(*payload);
      lb_link_busy_[p].store(false);
      any = true;
    }
    return any;
  }

  bool incorporate_boundaries(std::size_t p, ThreadProc& proc) {
    bool any = false;
    if (auto msg = proc.from_left.take()) {
      any |= proc.block->accept_left_ghosts(*msg);
      proc.left_data_iteration =
          std::max(proc.left_data_iteration, msg->sender_iteration);
      proc.left_load = msg->sender_load;
      (void)p;
    }
    if (auto msg = proc.from_right.take()) {
      any |= proc.block->accept_right_ghosts(*msg);
      proc.right_data_iteration =
          std::max(proc.right_data_iteration, msg->sender_iteration);
      proc.right_load = msg->sender_load;
    }
    return any;
  }

  void publish_load(ThreadProc& proc) {
    lb::NodeLoadInputs inputs;
    const double r = proc.residual.load();
    inputs.residual = std::isinf(r) ? 1.0 : r;
    inputs.last_iteration_seconds = proc.last_iteration_seconds;
    inputs.last_iteration_work = proc.last_iteration_work;
    inputs.components = proc.block->count();
    proc.load.store(estimator_->estimate(inputs));
  }

  void send_boundaries(std::size_t p, ThreadProc& proc,
                       ode::BoundaryMessage& left,
                       ode::BoundaryMessage& right) {
    const auto stamp = [&](ode::BoundaryMessage& msg) {
      msg.sender_iteration = proc.iteration.load();
      msg.sender_components = proc.block->count();
      msg.sender_load = proc.load.load();
      msg.sender_residual = proc.residual.load();
    };
    if (p > 0) {
      stamp(left);
      proc.bytes_out += left.byte_size();
      ++proc.data_messages;
      procs_[p - 1].from_right.put(std::move(left));
    }
    if (p + 1 < nprocs_) {
      stamp(right);
      proc.bytes_out += right.byte_size();
      ++proc.data_messages;
      procs_[p + 1].from_left.put(std::move(right));
    }
  }

  void try_load_balance(std::size_t p, ThreadProc& proc) {
    if (proc.ok_to_try_lb > 0) {
      --proc.ok_to_try_lb;
      return;
    }
    if (proc.fault_plan) {
      // Trigger skew: postpone an elapsed OkToTryLB countdown by a few
      // iterations. Neighbors fall out of phase, so decisions act on
      // piggybacked load estimates that lag reality by more iterations —
      // exactly the staleness the balancer must tolerate.
      const std::size_t skew = proc.fault_plan->lb_trigger_skew();
      if (skew > 0) {
        proc.ok_to_try_lb = skew;
        return;
      }
    }
    lb::BalanceView view;
    view.my_load = proc.load.load();
    view.my_components = proc.block->count();
    if (p > 0 && proc.left_load >= 0.0) {
      view.left_load = proc.left_load;
      view.left_link_busy = lb_link_busy_[p - 1].load();
    }
    if (p + 1 < nprocs_ && proc.right_load >= 0.0) {
      view.right_load = proc.right_load;
      view.right_link_busy = lb_link_busy_[p].load();
    }
    const auto decision = balancer_->decide(view);
    if (decision.action == lb::BalanceDecision::Action::kNone) return;
    const bool to_left =
        decision.action == lb::BalanceDecision::Action::kSendLeft;
    const std::size_t link = to_left ? p - 1 : p;

    // Claim the link first so two neighbors cannot start crossing
    // migrations; compare-exchange makes the claim atomic.
    bool expected = false;
    if (!lb_link_busy_[link].compare_exchange_strong(expected, true)) return;

    std::optional<ode::MigrationPayload> payload;
    {
      std::lock_guard<std::mutex> lock(proc.block_mutex);
      const std::size_t count = proc.block->count();
      std::size_t amount = decision.amount;
      if (count > min_keep_) amount = std::min(amount, count - min_keep_);
      else amount = 0;
      if (amount > 0) {
        payload = to_left ? proc.block->extract_for_left(amount)
                          : proc.block->extract_for_right(amount);
      }
      // Sample the famine invariant at its tightest point: immediately
      // after the extraction, before the payload is even sent.
      proc.min_components_seen =
          std::min(proc.min_components_seen, proc.block->count());
    }
    if (!payload) {
      lb_link_busy_[link].store(false);
      return;
    }
    proc.ok_to_try_lb = config_.balancer.trigger_period;
    ++proc.migrations_out;
    proc.components_out += payload->owned_count;
    proc.bytes_out += payload->byte_size();
    AIAC_DEBUG("thread-lb") << "proc " << p << " sends "
                            << payload->owned_count << " components "
                            << (to_left ? "left" : "right");
    if (to_left)
      procs_[p - 1].lb_from_right.push(std::move(*payload));
    else
      procs_[p + 1].lb_from_left.push(std::move(*payload));
  }

  void leader_detection() {
    for (const auto& proc : procs_)
      if (!proc.locally_converged.load()) return;
    for (std::size_t i = 0; i + 1 < nprocs_; ++i)
      if (lb_link_busy_[i].load()) return;
    for (const auto& proc : procs_)
      if (!proc.lb_from_left.empty() || !proc.lb_from_right.empty()) return;
    // Verify interface consistency under locks (ascending rank order; the
    // only multi-lock in the program, so no deadlock is possible).
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(nprocs_);
    for (auto& proc : procs_)
      locks.emplace_back(proc.block_mutex);
    double max_gap = 0.0;
    for (std::size_t pi = 0; pi + 1 < nprocs_; ++pi) {
      const double gap =
          procs_[pi].block->interface_gap_with_right(*procs_[pi + 1].block);
      if (gap > config_.tolerance) return;
      max_gap = std::max(max_gap, gap);
    }
    // Audit trail for the no-early-detection invariant: record exactly
    // what the protocol verified at the instant it decided to halt (all
    // block locks held, so no iteration is concurrently mutating state).
    detection_gap_ = max_gap;
    detection_max_residual_ = 0.0;
    for (const auto& proc : procs_)
      detection_max_residual_ =
          std::max(detection_max_residual_, proc.residual.load());
    halt_.store(true, std::memory_order_release);
    locks.clear();
    wake_all();
  }

  void idle_if_quiescent(std::size_t p, ThreadProc& proc,
                         const ode::WaveformBlock::IterationStats& stats) {
    const bool no_progress =
        stats.residual == 0.0 && stats.newton_iterations == 0;
    if (!no_progress) return;
    // Sleep until a message arrives or the bounded timeout fires.
    //
    // Drain-then-sleep audit (see tests/test_runtime_stress.cpp for the
    // regression hammer): this check-empty-then-wait sequence cannot lose
    // a wakeup because the predicate is re-evaluated under the Notifier's
    // mutex and every push commits its value *before* notifying — a push
    // landing between the drain and the wait is either seen by the
    // predicate or wakes the wait. Rank 0 also runs the convergence
    // detection, so its wait stays bounded (it must keep polling global
    // state its own notifier is never poked for); an unbounded spin here
    // used to starve the workers on a single-core host.
    (void)p;
    proc.notifier.wait_for(std::chrono::milliseconds(2), [&] {
      return halt_.load() || proc.from_left.has_value() ||
             proc.from_right.has_value() || !proc.lb_from_left.empty() ||
             !proc.lb_from_right.empty();
    });
  }

  void wait_for_neighbor_data(std::size_t p, ThreadProc& proc) {
    // SISC/SIAC readiness: both neighbors' data updated at (or after) our
    // just-completed iteration must have been incorporated before the next
    // one starts (paper §1.2).
    const std::size_t needed = proc.iteration.load();
    const auto ready = [&] {
      const bool left_ok = p == 0 || proc.left_data_iteration >= needed;
      const bool right_ok =
          p + 1 == nprocs_ || proc.right_data_iteration >= needed;
      return left_ok && right_ok;
    };
    while (!halt_.load() && !ready()) {
      proc.notifier.wait_for(std::chrono::milliseconds(100), [&] {
        return halt_.load() || proc.from_left.has_value() ||
               proc.from_right.has_value();
      });
      std::lock_guard<std::mutex> lock(proc.block_mutex);
      (void)incorporate_boundaries(p, proc);
    }
  }

  const ode::OdeSystem& system_;
  EngineConfig config_;
  std::size_t nprocs_;
  std::unique_ptr<lb::LoadEstimator> estimator_;
  std::unique_ptr<lb::NeighborBalancer> balancer_;
  std::size_t stencil_ = 0;
  std::size_t min_keep_ = 0;
  std::vector<ThreadProc> procs_;
  std::unique_ptr<std::atomic<bool>[]> lb_link_busy_;
  std::unique_ptr<runtime::FaultInjector> injector_;
  trace::ExecutionTrace* trace_ = nullptr;
  std::atomic<bool> halt_{false};
  std::atomic<bool> failed_{false};
  // Written once by rank 0 (in leader_detection, pre-halt), read after
  // join; -1 marks "never converged".
  double detection_gap_ = -1.0;
  double detection_max_residual_ = -1.0;

  void wake_all() {
    for (auto& proc : procs_) proc.notifier.notify();
  }
};

}  // namespace

EngineResult run_threaded(const ode::OdeSystem& system,
                          std::size_t processors, const EngineConfig& config,
                          trace::ExecutionTrace* trace) {
  ThreadEngine engine(system, processors, config, trace);
  return engine.run();
}

}  // namespace aiac::core
