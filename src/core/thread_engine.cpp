#include "core/thread_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algo/detection.hpp"
#include "algo/processor_core.hpp"
#include "algo/runtime_ifaces.hpp"
#include "ode/boundary_delta.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/ordered_mutex.hpp"
#include "runtime/notifier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/worker_pool.hpp"
#include "trace/execution_trace.hpp"
#include "util/log.hpp"

namespace aiac::core {

namespace {

using Clock = std::chrono::steady_clock;
using algo::Side;

/// Per-processor runtime plumbing. All algorithm state lives in the
/// shared algo::ProcessorCore (serialized by block_mutex); this struct
/// only holds the channels, the notifier, lock-free mirrors of core state
/// for cross-thread reads, and owner-thread counters.
struct ThreadProc {
  /// Algorithm 7: "if not accessing data array". Rank 2 + p in the
  /// engine's lock order (see runtime/ordered_mutex.hpp), so the two
  /// all-block multi-locks are ascending by machine-checked construction.
  runtime::OrderedMutex block_mutex;
  runtime::Notifier notifier;
  runtime::SlotBox<ode::BoundaryMessage> from_left{&notifier};
  runtime::SlotBox<ode::BoundaryMessage> from_right{&notifier};
  runtime::Mailbox<ode::MigrationPayload> lb_from_left{&notifier};
  runtime::Mailbox<ode::MigrationPayload> lb_from_right{&notifier};
  /// Convergence-detection deliveries (Transport::post_control): closures
  /// drained and run in this thread's own context, under the engine's
  /// detection mutex.
  runtime::Mailbox<std::function<void()>> control{&notifier};

  // Mirrors of core state, published by the owner after each iteration so
  // the leader's oracle precheck and the detection protocol can read them
  // without taking block_mutex.
  std::atomic<std::size_t> iteration{0};
  std::atomic<double> residual{std::numeric_limits<double>::infinity()};
  std::atomic<bool> locally_converged{false};

  // Owner-thread counters (summed after join).
  std::size_t data_messages = 0;
  std::size_t bytes_out = 0;

  // Wire-equivalent byte accounting (owner-thread only, like bytes_out):
  // the same per-link planner the socket backend runs decides what an
  // equivalent delta-capable link would have carried, and bytes_out is
  // charged that size. The mailbox still delivers the full-precision
  // message — thinning here is a metric, never an approximation.
  ode::BoundaryDeltaSender delta_left;
  ode::BoundaryDeltaSender delta_right;
  ode::BoundaryDeltaMessage delta_scratch;
  trace::CommsRecord comms_left;
  trace::CommsRecord comms_right;

  // Chaos layer (null when disabled): compute stalls + LB-trigger skew.
  runtime::FaultPlan* fault_plan = nullptr;
};

/// The threaded driver: real threads over the shared algorithm objects.
/// Implements Transport by pushing into the neighbor's channels, the
/// ClockModel by measuring wall time, and the DetectionDriver over the
/// atomic mirrors.
class ThreadEngine final : public algo::Transport,
                           public algo::ClockModel,
                           public algo::DetectionDriver {
 public:
  ThreadEngine(const ode::OdeSystem& system, std::size_t processors,
               const EngineConfig& config, trace::ExecutionTrace* trace)
      : config_(config),
        nprocs_(processors),
        dimension_(system.dimension()),
        trace_(trace) {
    if (processors == 0)
      throw std::invalid_argument("run_threaded: zero processors");

    algo::FleetConfig fc;
    fc.processors = processors;
    fc.partition = config.initial_partition;
    // Threads share identical cores, so empty speeds mean uniform (the
    // speed-weighted split then degenerates to the even one); a non-empty
    // vector models a deliberately skewed deployment.
    fc.speeds = config.processor_speeds;
    fc.num_steps = config.num_steps;
    fc.t_end = config.t_end;
    fc.solve_mode = config.solve_mode;
    fc.newton = config.newton;
    fc.receive_filter = config.tolerance * config.receive_filter_factor;
    fc.tolerance = config.tolerance;
    fc.persistence = config.persistence;
    fc.estimator = config.estimator;
    fc.balancer = config.balancer;
    fc.intra_chunks = config.intra_threads;
    fleet_ = std::make_unique<algo::CoreFleet>(system, fc);

    // Intra-processor parallelism: each processor thread gets its own
    // pool (a core's iterate runs under its block mutex, so pools are
    // never shared and pool workers take no engine locks). The worker
    // count is capped at the hardware share left per processor thread —
    // nprocs * (1 + workers) <= hardware_concurrency — so enabling
    // intra_threads can never oversubscribe the machine; when the cap
    // leaves no room the chunks run inline with identical results.
    if (config.intra_threads > 1) {
      const std::size_t hw = std::max<std::size_t>(
          1, std::thread::hardware_concurrency());
      const std::size_t share = hw / processors;
      const std::size_t workers =
          std::min(config.intra_threads - 1,
                   share > 0 ? share - 1 : std::size_t{0});
      if (workers > 0) {
        intra_pools_.reserve(processors);
        for (std::size_t p = 0; p < processors; ++p) {
          intra_pools_.push_back(
              std::make_unique<runtime::WorkerPool>(workers));
          fleet_->core(p).set_worker_pool(intra_pools_.back().get());
        }
      }
    }

    procs_ = std::vector<ThreadProc>(processors);
    if (config.delta_boundaries) {
      const ode::BoundaryDeltaSender::Config dc{
          config.tolerance * config.delta_threshold_factor,
          config.delta_refresh_period};
      for (auto& proc : procs_) {
        proc.delta_left = ode::BoundaryDeltaSender(dc);
        proc.delta_right = ode::BoundaryDeltaSender(dc);
      }
    }
    for (std::size_t p = 0; p < processors; ++p) {
      procs_[p].comms_left.src = p;
      procs_[p].comms_left.dst = p > 0 ? p - 1 : p;
      procs_[p].comms_right.src = p;
      procs_[p].comms_right.dst = p + 1 < processors ? p + 1 : p;
    }
    // Lock-order ranks: detection mutex below every block mutex (a
    // detection closure may broadcast the halt, which takes all block
    // locks), block mutexes ascending by processor.
    detection_mutex_.set_rank(1);
    for (std::size_t p = 0; p < processors; ++p)
      procs_[p].block_mutex.set_rank(static_cast<unsigned>(2 + p));
    lb_link_busy_ =
        std::make_unique<std::atomic<bool>[]>(processors > 1 ? processors - 1
                                                             : 1);
    for (std::size_t i = 0; i + 1 < processors; ++i) lb_link_busy_[i] = false;
    protocol_ = std::make_unique<algo::DetectionProtocol>(
        config.detection, processors, *this, *this);

    if (config.faults.enabled) {
      injector_ =
          std::make_unique<runtime::FaultInjector>(config.faults, processors);
      if (config.scheme != Scheme::kAIAC) {
        // SISC/SIAC block until the neighbor's iteration-k data arrived;
        // replaying a stale boundary slot would erase the only copy of
        // that data and livelock both ends of the link (the synchronous
        // schemes assume reliable FIFO delivery — see DESIGN.md).
        injector_->disable_stale_replay();
      }
      using Dir = runtime::FaultInjector::Direction;
      for (std::size_t p = 0; p < processors; ++p) {
        procs_[p].fault_plan = injector_->compute_plan(p);
        // A box's hook runs in the pushing thread, so each box gets the
        // plan of the directed channel feeding it.
        if (p > 0) {
          procs_[p].from_left.set_fault_hook(
              injector_->boundary_plan(p - 1, Dir::kToRight));
          procs_[p].lb_from_left.set_fault_hook(
              injector_->lb_plan(p - 1, Dir::kToRight));
        }
        if (p + 1 < processors) {
          procs_[p].from_right.set_fault_hook(
              injector_->boundary_plan(p + 1, Dir::kToLeft));
          procs_[p].lb_from_right.set_fault_hook(
              injector_->lb_plan(p + 1, Dir::kToLeft));
        }
      }
    }
  }

  EngineResult run() {
    t0_ = Clock::now();
    {
      runtime::ThreadTeam team;
      team.spawn(nprocs_, [this](std::size_t rank) { worker(rank); });
      team.join();
    }
    const auto t1 = Clock::now();
    return assemble_result(std::chrono::duration<double>(t1 - t0_).count());
  }

  // ---- algo::ClockModel ---------------------------------------------

  double now() const override {
    return std::chrono::duration<double>(Clock::now() - t0_).count();
  }

  /// Measuring driver: durations are observed, never predicted.
  double work_to_seconds(std::size_t, double, double, double) override {
    return -1.0;
  }

  // ---- algo::Transport ----------------------------------------------

  /// Owner-thread only (worker's own emit after its iteration), so the
  /// sender-side counters need no synchronization.
  void send_boundary(std::size_t src, Side toward,
                     ode::BoundaryMessage msg) override {
    ThreadProc& sender = procs_[src];
    const bool to_left = toward == Side::kLeft;
    ode::BoundaryDeltaSender& planner =
        to_left ? sender.delta_left : sender.delta_right;
    trace::CommsRecord& comms =
        to_left ? sender.comms_left : sender.comms_right;
    // Charge the size a delta-capable wire would carry (DESIGN.md §14);
    // the delivered message below stays full-precision regardless.
    std::size_t wire_bytes = msg.byte_size();
    bool full = true;
    if (config_.delta_boundaries &&
        planner.plan(msg, sender.delta_scratch) ==
            ode::BoundaryDeltaSender::Plan::kDelta) {
      wire_bytes = sender.delta_scratch.byte_size();
      full = false;
    }
    sender.bytes_out += wire_bytes;
    ++sender.data_messages;
    ++comms.frames_sent;
    if (full)
      ++comms.frames_full;
    else
      ++comms.frames_delta;
    comms.bytes_sent += wire_bytes;
    // "Latest data wins": an unread message this put displaces would be
    // destroyed here on the per-iteration path — recycle its rows instead.
    std::optional<ode::BoundaryMessage> displaced =
        toward == Side::kLeft
            ? procs_[src - 1].from_right.put(std::move(msg))
            : procs_[src + 1].from_left.put(std::move(msg));
    if (displaced) pool_.release(std::move(displaced->rows));
  }

  void send_migration(std::size_t src, Side toward,
                      ode::MigrationPayload payload) override {
    AIAC_DEBUG("thread-lb") << "proc " << src << " sends "
                            << payload.owned_count << " components "
                            << (toward == Side::kLeft ? "left" : "right");
    if (toward == Side::kLeft)
      procs_[src - 1].lb_from_right.push(std::move(payload));
    else
      procs_[src + 1].lb_from_left.push(std::move(payload));
  }

  /// Always entered with detection_mutex_ held (every protocol entry point
  /// runs under it), which also guards the control counters.
  void post_control(std::size_t, std::size_t dst,
                    std::function<void()> deliver) override {
    ++control_messages_;
    control_bytes_ += config_.control_message_bytes;
    procs_[dst].control.push(std::move(deliver));
  }

  // ---- algo::DetectionDriver ----------------------------------------

  bool locally_converged(std::size_t rank) const override {
    return procs_[rank].locally_converged.load();
  }

  /// A token is never processed on delivery here: the receiving node folds
  /// it in at its own next iteration end (a dormant node is woken by the
  /// control push and runs one more iteration). Processing on delivery
  /// would recurse through the drain loop on a self-posted token.
  bool node_idle(std::size_t) const override { return false; }

  /// Coordinator verification, aligned with the other two backends: a
  /// node whose migration mailbox is non-empty (or whose adjacent links
  /// carry an in-flight payload) may not confirm — its convergence
  /// mirror predates work it is already committed to absorbing. All
  /// reads are lock-free mirrors; the block lock is never taken here.
  bool confirm_converged(std::size_t rank) const override {
    const ThreadProc& proc = procs_[rank];
    if (!proc.locally_converged.load()) return false;
    if (!proc.lb_from_left.empty() || !proc.lb_from_right.empty())
      return false;
    if (rank > 0 && lb_link_busy_[rank - 1].load()) return false;
    if (rank + 1 < nprocs_ && lb_link_busy_[rank].load()) return false;
    return true;
  }

  /// Coordinator/token-ring halt (under detection_mutex_, caller holds no
  /// block lock). The protocol guaranteed persistent local convergence,
  /// not interface consistency; record what actually held over a
  /// quiescent view, then bring every thread down.
  void broadcast_halt() override {
    std::vector<std::unique_lock<runtime::OrderedMutex>> locks;
    locks.reserve(nprocs_);
    for (auto& proc : procs_) locks.emplace_back(proc.block_mutex);
    const algo::OracleSnapshot snap = algo::measured_audit(*fleet_);
    detection_gap_ = snap.max_gap;
    detection_max_residual_ = snap.max_residual;
    // The halt fan-out is one control message per processor, as on the
    // simulated backend.
    control_messages_ += nprocs_;
    control_bytes_ += nprocs_ * config_.control_message_bytes;
    halt_.store(true, std::memory_order_release);
    locks.clear();
    wake_all();
  }

 private:
  void worker(std::size_t p) {
    ThreadProc& proc = procs_[p];
    algo::ProcessorCore& core = fleet_->core(p);
    while (!halt_.load(std::memory_order_acquire)) {
      if (proc.fault_plan) {
        // Transient slow-node stall, served at the iteration boundary
        // where a real machine would lose the core to a competing job.
        const auto stall = proc.fault_plan->compute_stall();
        if (stall.count() > 0) std::this_thread::sleep_for(stall);
      }
      drain_control(proc);
      if (halt_.load(std::memory_order_acquire)) break;

      ode::WaveformBlock::IterationStats stats;
      std::optional<ode::BoundaryMessage> out_left;
      std::optional<ode::BoundaryMessage> out_right;
      std::size_t iteration = 0;
      double residual = 0.0;
      bool converged = false;
      {
        std::lock_guard<runtime::OrderedMutex> lock(proc.block_mutex);
        while (auto payload = proc.lb_from_left.try_pop())
          core.enqueue_migration(Side::kLeft, std::move(*payload));
        while (auto payload = proc.lb_from_right.try_pop())
          core.enqueue_migration(Side::kRight, std::move(*payload));
        // The core copies boundary data into its persistent inbox, so the
        // message's rows go straight back to the pool.
        if (auto msg = proc.from_left.take()) {
          core.ingest_boundary(Side::kLeft, *msg);
          pool_.release(std::move(msg->rows));
        }
        if (auto msg = proc.from_right.take()) {
          core.ingest_boundary(Side::kRight, *msg);
          pool_.release(std::move(msg->rows));
        }
        const auto begin = core.begin_iteration();
        // The link stays busy until the receiver absorbs the payload,
        // which serializes migrations per link.
        if (begin.absorbed_from_left) lb_link_busy_[p - 1].store(false);
        if (begin.absorbed_from_right) lb_link_busy_[p].store(false);
        const double start = now();
        stats = core.run_iteration();
        core.finish_iteration(stats, start, *this);
        // Outgoing messages are packed into pool-recycled row buffers
        // (fill_boundary resizes within the recycled capacity), so the
        // steady-state send path allocates nothing.
        if (core.has_neighbor(Side::kLeft)) {
          out_left.emplace();
          out_left->rows = pool_.acquire();
          core.fill_boundary(Side::kLeft, *out_left);
        }
        if (core.has_neighbor(Side::kRight)) {
          out_right.emplace();
          out_right->rows = pool_.acquire();
          core.fill_boundary(Side::kRight, *out_right);
        }
        iteration = core.iteration();
        residual = core.last_residual();
        converged = core.locally_converged();
      }
      proc.iteration.store(iteration);
      proc.residual.store(residual);
      proc.locally_converged.store(converged);

      // Channel pushes (and their fault hooks, which may sleep) happen
      // outside the block lock so a stalled delivery never blocks the
      // leader's quiescent probe.
      if (out_left) send_boundary(p, Side::kLeft, std::move(*out_left));
      if (out_right) send_boundary(p, Side::kRight, std::move(*out_right));
      if (config_.load_balancing) try_load_balance(p, proc, core);

      if (config_.detection == DetectionMode::kOracle) {
        if (p == 0) leader_oracle();
      } else {
        std::lock_guard<runtime::OrderedMutex> lock(detection_mutex_);
        protocol_->on_iteration_end(p);
      }

      if (iteration >= config_.max_iterations_per_processor) {
        failed_.store(true);
        halt_.store(true, std::memory_order_release);
        wake_all();
        break;
      }

      if (config_.scheme == Scheme::kAIAC)
        idle_if_quiescent(proc, stats);
      else
        wait_for_neighbor_data(p, proc, core);
    }
  }

  /// Runs queued detection closures in this thread's context. Must be
  /// called without holding the caller's block lock: a closure may be the
  /// halt decision, which takes every block lock.
  void drain_control(ThreadProc& proc) {
    while (auto fn = proc.control.try_pop()) {
      std::lock_guard<runtime::OrderedMutex> lock(detection_mutex_);
      (*fn)();
    }
  }

  void try_load_balance(std::size_t p, ThreadProc& proc,
                        algo::ProcessorCore& core) {
    std::optional<ode::MigrationPayload> payload;
    Side side = Side::kLeft;
    {
      std::lock_guard<runtime::OrderedMutex> lock(proc.block_mutex);
      if (!core.lb_trigger_due()) return;
      if (proc.fault_plan) {
        // Trigger skew: postpone an elapsed OkToTryLB countdown by a few
        // iterations. Neighbors fall out of phase, so decisions act on
        // piggybacked load estimates that lag reality by more iterations —
        // exactly the staleness the balancer must tolerate.
        const std::size_t skew = proc.fault_plan->lb_trigger_skew();
        if (skew > 0) {
          core.defer_lb(skew);
          return;
        }
      }
      const bool left_busy = p > 0 && lb_link_busy_[p - 1].load();
      const bool right_busy = p + 1 < nprocs_ && lb_link_busy_[p].load();
      const auto decision = core.plan_migration(left_busy, right_busy);
      if (decision.action == lb::BalanceDecision::Action::kNone) return;
      const bool to_left =
          decision.action == lb::BalanceDecision::Action::kSendLeft;
      side = to_left ? Side::kLeft : Side::kRight;
      const std::size_t link = to_left ? p - 1 : p;
      // Claim the link first so two neighbors cannot start crossing
      // migrations; compare-exchange makes the claim atomic.
      bool expected = false;
      if (!lb_link_busy_[link].compare_exchange_strong(expected, true)) return;
      // Pool-acquired rows: extract_migration_into resizes within the
      // recycled capacity. The receive side is not recycled (payloads are
      // queued whole and absorbed later — a cold path).
      payload.emplace();
      payload->rows = pool_.acquire();
      if (!core.extract_migration_into(side, decision.amount, *payload)) {
        lb_link_busy_[link].store(false);
        pool_.release(std::move(payload->rows));
        return;
      }
    }
    send_migration(p, side, std::move(*payload));
  }

  /// Rank 0 drives oracle detection: a lock-free precheck on the mirrors,
  /// then the shared global probe over a quiescent view (every block lock
  /// held, ascending rank order — one of only two multi-locks in the
  /// program, both ascending, so no deadlock is possible).
  void leader_oracle() {
    for (const auto& proc : procs_)
      if (!proc.locally_converged.load()) return;
    for (std::size_t i = 0; i + 1 < nprocs_; ++i)
      if (lb_link_busy_[i].load()) return;
    for (const auto& proc : procs_)
      if (!proc.lb_from_left.empty() || !proc.lb_from_right.empty()) return;
    std::vector<std::unique_lock<runtime::OrderedMutex>> locks;
    locks.reserve(nprocs_);
    for (auto& proc : procs_) locks.emplace_back(proc.block_mutex);
    // Re-check the links under the locks: a payload extracted after the
    // precheck keeps its link busy until the receiver absorbs it, which
    // needs the receiver's block lock — held here.
    bool lb_in_flight = false;
    for (std::size_t i = 0; i + 1 < nprocs_; ++i)
      lb_in_flight = lb_in_flight || lb_link_busy_[i].load();
    const algo::OracleSnapshot snap =
        algo::oracle_probe(*fleet_, lb_in_flight, config_.tolerance);
    if (!snap.converged) return;
    // Audit trail for the no-early-detection invariant: record exactly
    // what the probe verified at the instant it decided to halt.
    detection_gap_ = snap.max_gap;
    detection_max_residual_ = snap.max_residual;
    halt_.store(true, std::memory_order_release);
    locks.clear();
    wake_all();
  }

  void idle_if_quiescent(ThreadProc& proc,
                         const ode::WaveformBlock::IterationStats& stats) {
    const bool no_progress =
        stats.residual == 0.0 && stats.newton_iterations == 0;
    if (!no_progress) return;
    // Sleep until a message arrives or the bounded timeout fires.
    //
    // Drain-then-sleep audit (see tests/test_runtime_stress.cpp for the
    // regression hammer): this check-empty-then-wait sequence cannot lose
    // a wakeup because the predicate is re-evaluated under the Notifier's
    // mutex and every push commits its value *before* notifying — a push
    // landing between the drain and the wait is either seen by the
    // predicate or wakes the wait. Rank 0 also runs the convergence
    // detection, so its wait stays bounded (it must keep polling global
    // state its own notifier is never poked for); an unbounded spin here
    // used to starve the workers on a single-core host.
    proc.notifier.wait_for(std::chrono::milliseconds(2), [&] {
      return halt_.load() || proc.from_left.has_value() ||
             proc.from_right.has_value() || !proc.lb_from_left.empty() ||
             !proc.lb_from_right.empty() || !proc.control.empty();
    });
  }

  void wait_for_neighbor_data(std::size_t p, ThreadProc& proc,
                              algo::ProcessorCore& core) {
    // SISC/SIAC readiness: both neighbors' data updated at (or after) our
    // just-completed iteration must have been incorporated before the next
    // one starts (paper §1.2).
    const std::size_t needed = core.iteration();
    const auto ready = [&] {
      const bool left_ok =
          p == 0 || core.data_iteration(Side::kLeft) >= needed;
      const bool right_ok =
          p + 1 == nprocs_ || core.data_iteration(Side::kRight) >= needed;
      return left_ok && right_ok;
    };
    while (!halt_.load() && !ready()) {
      proc.notifier.wait_for(std::chrono::milliseconds(100), [&] {
        return halt_.load() || proc.from_left.has_value() ||
               proc.from_right.has_value() || !proc.control.empty();
      });
      drain_control(proc);
      std::lock_guard<runtime::OrderedMutex> lock(proc.block_mutex);
      if (auto msg = proc.from_left.take()) {
        core.ingest_boundary(Side::kLeft, *msg);
        pool_.release(std::move(msg->rows));
      }
      if (auto msg = proc.from_right.take()) {
        core.ingest_boundary(Side::kRight, *msg);
        pool_.release(std::move(msg->rows));
      }
    }
  }

  EngineResult assemble_result(double wall_seconds) {
    EngineResult result;
    result.converged = halt_.load() && !failed_.load();
    if (failed_.load())
      result.failure_reason = "iteration budget exhausted (" +
                              std::to_string(
                                  config_.max_iterations_per_processor) +
                              " per processor)";
    result.execution_time = wall_seconds;
    // Drain any payload still sitting in a mailbox so the solution covers
    // every component (can only happen on a failure stop).
    for (std::size_t p = 0; p < nprocs_; ++p) {
      algo::ProcessorCore& core = fleet_->core(p);
      while (auto payload = procs_[p].lb_from_left.try_pop())
        core.enqueue_migration(Side::kLeft, std::move(*payload));
      while (auto payload = procs_[p].lb_from_right.try_pop())
        core.enqueue_migration(Side::kRight, std::move(*payload));
      core.drain_pending_migrations();
    }
    result.solution = ode::Trajectory(dimension_, config_.num_steps);
    result.min_components_observed =
        std::numeric_limits<std::size_t>::max();
    for (std::size_t p = 0; p < nprocs_; ++p) {
      const algo::ProcessorCore& core = fleet_->core(p);
      core.block().copy_local_into(result.solution);
      result.total_iterations += core.iteration();
      result.iterations_per_processor.push_back(core.iteration());
      result.final_components.push_back(core.components());
      result.total_work += core.total_work();
      result.migrations += core.migrations_out();
      result.components_migrated += core.components_out();
      result.bytes_sent += core.lb_bytes_out();
      result.min_components_observed =
          std::min(result.min_components_observed, core.min_components_seen());
      if (!std::isinf(core.last_residual()))
        result.final_max_residual =
            std::max(result.final_max_residual, core.last_residual());
      result.data_messages += procs_[p].data_messages;
      result.bytes_sent += procs_[p].bytes_out;
    }
    if (trace_) {
      for (std::size_t p = 0; p < nprocs_; ++p) {
        ThreadProc& proc = procs_[p];
        if (p > 0 && proc.comms_left.frames_sent > 0) {
          proc.comms_left.rows_suppressed = proc.delta_left.rows_suppressed();
          proc.comms_left.bytes_received =
              procs_[p - 1].comms_right.bytes_sent;
          trace_->record_comms(proc.comms_left);
        }
        if (p + 1 < nprocs_ && proc.comms_right.frames_sent > 0) {
          proc.comms_right.rows_suppressed =
              proc.delta_right.rows_suppressed();
          proc.comms_right.bytes_received =
              procs_[p + 1].comms_left.bytes_sent;
          trace_->record_comms(proc.comms_right);
        }
      }
    }
    result.lb_messages = result.migrations;
    result.control_messages = control_messages_;
    result.bytes_sent += control_bytes_;
    result.detection_gap = detection_gap_;
    result.detection_max_residual = detection_max_residual_;
    if (injector_) {
      result.faults_injected = injector_->log().total();
      if (trace_) {
        for (const auto& event : injector_->log().snapshot()) {
          trace::FaultRecord record;
          record.source = event.source;
          record.time = event.time;
          record.kind = runtime::to_string(event.kind);
          record.magnitude = event.magnitude;
          record.sequence = event.sequence;
          trace_->record_fault(std::move(record));
        }
      }
    }
    return result;
  }

  void wake_all() {
    for (auto& proc : procs_) proc.notifier.notify();
  }

  EngineConfig config_;
  std::size_t nprocs_;
  std::size_t dimension_;
  std::unique_ptr<algo::CoreFleet> fleet_;
  /// Recycles boundary/migration row buffers across all workers; its
  /// internal mutex is a leaf (nothing is acquired while it is held), so
  /// it stays outside the OrderedMutex rank order.
  runtime::BufferPool pool_;
  /// Per-processor intra-iterate worker pools (empty when intra_threads
  /// <= 1 or the hardware share leaves no room for extra threads). Pools
  /// are only dispatched from inside run(), whose threads are joined
  /// before destruction, so teardown order vs. the fleet is immaterial.
  std::vector<std::unique_ptr<runtime::WorkerPool>> intra_pools_;
  std::vector<ThreadProc> procs_;
  std::unique_ptr<std::atomic<bool>[]> lb_link_busy_;
  std::unique_ptr<algo::DetectionProtocol> protocol_;
  std::unique_ptr<runtime::FaultInjector> injector_;
  trace::ExecutionTrace* trace_ = nullptr;
  Clock::time_point t0_{};
  std::atomic<bool> halt_{false};
  std::atomic<bool> failed_{false};
  /// Serializes every DetectionProtocol call (iteration-end hooks and the
  /// drained delivery closures) and guards the control counters.
  runtime::OrderedMutex detection_mutex_;
  std::size_t control_messages_ = 0;
  std::size_t control_bytes_ = 0;
  // Written once by whichever thread takes the halt decision (all block
  // locks held), read after join; -1 marks "never converged".
  double detection_gap_ = -1.0;
  double detection_max_residual_ = -1.0;
};

}  // namespace

EngineResult run_threaded(const ode::OdeSystem& system,
                          std::size_t processors, const EngineConfig& config,
                          trace::ExecutionTrace* trace) {
  ThreadEngine engine(system, processors, config, trace);
  return engine.run();
}

}  // namespace aiac::core
