#include "core/sim_engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include <thread>

#include "algo/detection.hpp"
#include "algo/processor_core.hpp"
#include "algo/runtime_ifaces.hpp"
#include "algo/trace_sink.hpp"
#include "des/simulator.hpp"
#include "ode/boundary_delta.hpp"
#include "trace/execution_trace.hpp"
#include "runtime/worker_pool.hpp"
#include "util/log.hpp"

namespace aiac::core {

namespace {

using algo::Side;

/// The discrete-event driver: all algorithm state lives in the shared
/// algo::ProcessorCore / DetectionProtocol; this class only schedules
/// events, models message latency and computation duration on the grid,
/// and keeps the per-processor execution flags (computing / waiting /
/// dormant / halted) the event loop needs.
class SimEngine final : public algo::Transport,
                        public algo::ClockModel,
                        public algo::DetectionDriver {
 public:
  SimEngine(const ode::OdeSystem& system, grid::Grid& grid,
            const EngineConfig& config, trace::ExecutionTrace* trace)
      : system_(system), grid_(grid), config_(config), trace_(trace) {
    const std::size_t nprocs = grid.process_count();
    if (nprocs == 0) throw std::invalid_argument("SimEngine: no processors");

    algo::FleetConfig fc;
    fc.processors = nprocs;
    fc.partition = config.initial_partition;
    fc.speeds = config.processor_speeds;
    if (fc.speeds.empty() &&
        config.initial_partition == InitialPartition::kSpeedWeighted) {
      fc.speeds.resize(nprocs);
      for (std::size_t p = 0; p < nprocs; ++p)
        fc.speeds[p] = grid.machine_of(p).peak_speed();
    }
    fc.num_steps = config.num_steps;
    fc.t_end = config.t_end;
    fc.solve_mode = config.solve_mode;
    fc.newton = config.newton;
    fc.receive_filter = config.tolerance * config.receive_filter_factor;
    fc.tolerance = config.tolerance;
    fc.persistence = config.persistence;
    fc.estimator = config.estimator;
    fc.balancer = config.balancer;
    fc.intra_chunks = config.intra_threads;
    fleet_ = std::make_unique<algo::CoreFleet>(system, fc);

    // Intra-processor parallelism: the event loop runs one core at a
    // time on this thread, so a single shared pool serves every core's
    // chunk job. Workers are capped at hardware_concurrency - 1 (the
    // dispatching thread participates); when the cap leaves no room the
    // chunks run inline with identical results.
    if (config.intra_threads > 1) {
      const std::size_t hw = std::max<std::size_t>(
          1, std::thread::hardware_concurrency());
      const std::size_t workers =
          std::min(config.intra_threads - 1, hw - 1);
      if (workers > 0) {
        intra_pool_ = std::make_unique<runtime::WorkerPool>(workers);
        for (std::size_t p = 0; p < nprocs; ++p)
          fleet_->core(p).set_worker_pool(intra_pool_.get());
      }
    }

    procs_.resize(nprocs);
    // Wire-equivalent byte accounting (DESIGN.md §14): one planner per
    // directed link, identical to the socket backend's, so the byte
    // counters and the trace charge the size a delta-capable wire would
    // carry. The delay model and the delivered values stay on the full
    // message — virtual-time results are unchanged by the metric.
    if (config.delta_boundaries) {
      const ode::BoundaryDeltaSender::Config dc{
          config.tolerance * config.delta_threshold_factor,
          config.delta_refresh_period};
      delta_to_left_.assign(nprocs, ode::BoundaryDeltaSender(dc));
      delta_to_right_.assign(nprocs, ode::BoundaryDeltaSender(dc));
    }
    comms_to_left_.resize(nprocs);
    comms_to_right_.resize(nprocs);
    for (std::size_t p = 0; p < nprocs; ++p) {
      comms_to_left_[p].src = p;
      comms_to_left_[p].dst = p > 0 ? p - 1 : p;
      comms_to_right_[p].src = p;
      comms_to_right_[p].dst = p + 1 < nprocs ? p + 1 : p;
    }
    lb_link_busy_.assign(nprocs > 0 ? nprocs - 1 : 0, false);
    lb_link_inflight_.resize(nprocs > 0 ? nprocs - 1 : 0);
    link_clear_.assign(nprocs > 0 ? nprocs - 1 : 0, {0.0, 0.0});
    protocol_ = std::make_unique<algo::DetectionProtocol>(
        config.detection, nprocs, *this, *this);
    if (trace_) trace_->set_processor_count(nprocs);
  }

  EngineResult run() {
    for (std::size_t p = 0; p < procs_.size(); ++p) try_start(p);
    sim_.run(/*max_events=*/200'000'000ULL);
    return assemble_result();
  }

  // ---- algo::ClockModel ---------------------------------------------

  double now() const override { return sim_.now(); }

  double work_to_seconds(std::size_t rank, double work, double start,
                         double resident) override {
    return grid_.compute_duration(rank, work, start, resident);
  }

  // ---- algo::Transport ----------------------------------------------

  /// Called from ProcessorCore::emit_boundaries right after the numerics
  /// ran at virtual time t_start; the staged departure times implement the
  /// scheme's send discipline (SIAC/AIAC dispatch the leftward data early
  /// in the iteration, paper Fig. 2-4; SISC sends everything at the end).
  void send_boundary(std::size_t src, Side toward,
                     ode::BoundaryMessage msg) override {
    const double depart = toward == Side::kLeft ? staged_left_depart_
                                                : staged_right_depart_;
    const std::size_t dst = toward == Side::kLeft ? src - 1 : src + 1;
    sim_.schedule_at(depart, [this, src, dst, msg = std::move(msg), toward] {
      dispatch_boundary(src, dst, msg, /*to_left=*/toward == Side::kLeft);
    });
  }

  void send_migration(std::size_t src, Side toward,
                      ode::MigrationPayload payload) override {
    const bool to_left = toward == Side::kLeft;
    const std::size_t dst = to_left ? src - 1 : src + 1;
    const std::size_t link = to_left ? src - 1 : src;
    const std::size_t amount = payload.owned_count;
    const double now_ = sim_.now();
    const double delay =
        grid_.message_delay(src, dst, payload.byte_size(), now_);
    const double arrival = link_delivery_time(src, dst, now_ + delay);
    algo::emit_message(trace_, src, dst, now_, arrival,
                       payload.byte_size(), trace::MessageKind::kLoadBalance);
    algo::emit_migration(trace_, src, dst, now_, amount);
    AIAC_DEBUG("lb") << "t=" << now_ << " proc " << src << " sends " << amount
                     << " components " << (to_left ? "left" : "right");

    lb_link_inflight_[link] = payload;  // recoverable if we stop mid-flight
    sim_.schedule_at(arrival, [this, dst, link,
                               payload = std::move(payload), to_left] {
      lb_link_inflight_[link].reset();
      if (stopped_) return;
      fleet_->core(dst).enqueue_migration(to_left ? Side::kRight : Side::kLeft,
                                          payload);
      // The link stays busy until the receiver absorbs the payload at its
      // next iteration start, which serializes migrations per link.
      if (procs_[dst].waiting || procs_[dst].dormant) try_start(dst);
    });
  }

  void post_control(std::size_t src, std::size_t dst,
                    std::function<void()> deliver) override {
    const double now_ = sim_.now();
    const double delay =
        src == dst
            ? 0.0
            : grid_.message_delay(src, dst, config_.control_message_bytes,
                                  now_);
    ++result_control_messages_;
    result_bytes_ += config_.control_message_bytes;
    if (src != dst)
      algo::emit_message(trace_, src, dst, now_, now_ + delay,
                         config_.control_message_bytes,
                         trace::MessageKind::kControl);
    sim_.schedule_at(now_ + delay, [this, deliver = std::move(deliver)] {
      if (stopped_) return;
      deliver();
    });
  }

  // ---- algo::DetectionDriver ----------------------------------------

  bool locally_converged(std::size_t rank) const override {
    return fleet_->core(rank).locally_converged();
  }

  bool node_idle(std::size_t rank) const override {
    return !procs_[rank].computing;
  }

  /// Coordinator verification: a node confirms only when nothing it has
  /// buffered could break its convergence report — no queued migration,
  /// and no delivered-but-unfolded boundary update that differs from the
  /// stored ghosts by more than the tolerance. Steady-state traffic
  /// (updates within tolerance of what the streak was built on) does not
  /// veto, so nodes that keep exchanging converged values can still halt.
  /// In-flight messages stay invisible, as for a real process; the
  /// verification round-trip is what makes winning that race unlikely.
  bool confirm_converged(std::size_t rank) const override {
    const algo::ProcessorCore& core = fleet_->core(rank);
    return core.locally_converged() && !core.has_pending_migrations() &&
           core.pending_input_disturbance() <= config_.tolerance;
  }

  void broadcast_halt() override {
    // The protocol guaranteed persistent local convergence, not interface
    // consistency; record what actually held at the halt instant.
    record_detection_audit();
    const double now_ = sim_.now();
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      const double delay =
          p == 0 ? 0.0
                 : grid_.message_delay(0, p, config_.control_message_bytes,
                                       now_);
      ++result_control_messages_;
      result_bytes_ += config_.control_message_bytes;
      sim_.schedule_at(now_ + delay, [this, p] {
        procs_[p].halted = true;
        if (std::all_of(procs_.begin(), procs_.end(),
                        [](const Proc& q) { return q.halted; }))
          stop_all(/*converged=*/true);
      });
    }
  }

 private:
  /// Driver-side execution state; everything algorithmic is in the core.
  struct Proc {
    bool computing = false;
    bool waiting = false;  // sync schemes: blocked on neighbor data
    bool halted = false;

    // Mutual exclusion on data sends (paper's AIAC variant, Fig. 4).
    bool send_left_busy = false;
    bool send_right_busy = false;
    // A send skipped because the link was busy; retried when it clears
    // (the spinning loop of the real runtime would retry likewise).
    bool send_left_pending = false;
    bool send_right_pending = false;

    /// Event-driven idling: an AIAC processor whose iteration changed
    /// nothing and whose inbox is empty sleeps until the next message
    /// (iterating on unchanged data is a no-op; the paper's runtime spins
    /// through such iterations, with identical observable behaviour).
    bool dormant = false;
  };

  bool ready_to_start(std::size_t p) const {
    if (config_.scheme == Scheme::kAIAC) return true;
    // Sync schemes: need both neighbors' data from our completed-iteration
    // count before starting the next one (iteration 1 needs nothing:
    // initial ghosts are the initial condition).
    const algo::ProcessorCore& core = fleet_->core(p);
    if (core.iteration() == 0) return true;
    if (core.has_neighbor(Side::kLeft) &&
        core.data_iteration(Side::kLeft) < core.iteration())
      return false;
    if (core.has_neighbor(Side::kRight) &&
        core.data_iteration(Side::kRight) < core.iteration())
      return false;
    return true;
  }

  void try_start(std::size_t p) {
    Proc& proc = procs_[p];
    if (proc.computing || proc.halted || stopped_) return;
    proc.dormant = false;
    if (!ready_to_start(p)) {
      proc.waiting = true;
      return;
    }
    proc.waiting = false;
    proc.computing = true;
    sim_.schedule_after(0.0, [this, p] { start_iteration(p); });
  }

  void start_iteration(std::size_t p) {
    Proc& proc = procs_[p];
    if (proc.halted || stopped_) {
      proc.computing = false;
      return;
    }
    const double t_start = sim_.now();
    algo::ProcessorCore& core = fleet_->core(p);

    const auto begin = core.begin_iteration();
    if (begin.absorbed_from_left) lb_link_busy_[p - 1] = false;
    if (begin.absorbed_from_right) lb_link_busy_[p] = false;

    // The real numerics. Conceptually they occupy the virtual interval
    // [t_start, t_start + duration); messages delivered inside that window
    // are only visible to the *next* iteration, which is why the core
    // buffers them in its inbox rather than applying them directly.
    const std::size_t components = core.components();
    const auto stats = core.run_iteration();
    const double work = stats.work + config_.iteration_overhead_work;
    const double duration =
        work_to_seconds(p, work, t_start, static_cast<double>(components));

    // Stage the scheme's departure times, then let the core hand its
    // freshly stamped boundary data to the transport.
    const bool early = config_.scheme != Scheme::kSISC;
    staged_left_depart_ =
        t_start + (early ? config_.early_send_fraction * duration : duration);
    staged_right_depart_ = t_start + duration;
    core.emit_boundaries(*this);

    sim_.schedule_at(t_start + duration, [this, p, stats, t_start, components] {
      finish_iteration(p, stats, t_start, components);
    });
  }

  /// Per-directed-link FIFO: the grid's data channels are TCP streams, so
  /// a later send never overtakes an earlier one — even when the delay
  /// model says a small frame travels faster than the big one ahead of
  /// it. Without this clamp a boundary update could overtake a migration
  /// (or be overtaken by one), get dropped by the receiver's position
  /// check, and never be resent; a sender that then goes dormant leaves
  /// the fleet to halt on a stale interface no local test can see.
  double link_delivery_time(std::size_t src, std::size_t dst, double eta) {
    double& clear = link_clear_[std::min(src, dst)][src < dst ? 0 : 1];
    const double arrival = std::max(eta, clear);
    clear = arrival;
    return arrival;
  }

  void dispatch_boundary(std::size_t src, std::size_t dst,
                         const ode::BoundaryMessage& msg, bool to_left) {
    if (stopped_) return;
    Proc& sender = procs_[src];
    // AIAC mutual exclusion: skip this send if the previous one on the
    // same link has not completed yet (paper Fig. 4 dashed lines).
    bool& busy = to_left ? sender.send_left_busy : sender.send_right_busy;
    if (config_.scheme == Scheme::kAIAC && busy) {
      // Remember to retry when the link clears, so a processor that goes
      // idle afterwards still propagates its final values.
      (to_left ? sender.send_left_pending : sender.send_right_pending) = true;
      return;
    }
    busy = true;
    const double sent = sim_.now();
    // The delay model stays on the full message size so virtual-time
    // results are comparable across configurations; the counters and the
    // trace charge what the delta-capable wire would have carried, and
    // the receiver always gets the full-precision values.
    const double delay = grid_.message_delay(src, dst, msg.byte_size(), sent);
    const double arrival = link_delivery_time(src, dst, sent + delay);
    std::size_t wire_bytes = msg.byte_size();
    bool full = true;
    if (config_.delta_boundaries) {
      ode::BoundaryDeltaSender& planner =
          to_left ? delta_to_left_[src] : delta_to_right_[src];
      if (planner.plan(msg, delta_scratch_) ==
          ode::BoundaryDeltaSender::Plan::kDelta) {
        wire_bytes = delta_scratch_.byte_size();
        full = false;
      }
    }
    trace::CommsRecord& comms =
        to_left ? comms_to_left_[src] : comms_to_right_[src];
    ++comms.frames_sent;
    if (full)
      ++comms.frames_full;
    else
      ++comms.frames_delta;
    comms.bytes_sent += wire_bytes;
    ++result_data_messages_;
    result_bytes_ += wire_bytes;
    algo::emit_message(trace_, src, dst, sent, arrival, wire_bytes,
                       trace::MessageKind::kBoundaryData);
    sim_.schedule_at(arrival, [this, src, dst, msg, to_left] {
      deliver_boundary(src, dst, msg, to_left);
    });
  }

  void deliver_boundary(std::size_t src, std::size_t dst,
                        const ode::BoundaryMessage& msg, bool to_left) {
    Proc& sender = procs_[src];
    (to_left ? sender.send_left_busy : sender.send_right_busy) = false;
    if (stopped_) return;
    bool& pending =
        to_left ? sender.send_left_pending : sender.send_right_pending;
    if (pending) {
      pending = false;
      auto fresh = fleet_->core(src).make_boundary(to_left ? Side::kLeft
                                                           : Side::kRight);
      dispatch_boundary(src, dst, fresh, to_left);
    }
    // src = dst + 1 when to_left: the receiver gets data from its right.
    fleet_->core(dst).ingest_boundary(to_left ? Side::kRight : Side::kLeft,
                                      msg);
    if (procs_[dst].waiting || procs_[dst].dormant) try_start(dst);
  }

  void finish_iteration(std::size_t p,
                        ode::WaveformBlock::IterationStats stats,
                        double t_start, std::size_t components) {
    Proc& proc = procs_[p];
    proc.computing = false;
    if (stopped_) return;
    algo::ProcessorCore& core = fleet_->core(p);
    core.finish_iteration(stats, t_start, *this);
    const double now_ = sim_.now();
    algo::emit_iteration(trace_, p, core.iteration(), t_start, now_,
                         stats.work, stats.residual, components);

    if (core.iteration() >= config_.max_iterations_per_processor ||
        now_ >= config_.max_virtual_time) {
      stop_all(/*converged=*/false);
      return;
    }

    if (config_.load_balancing) try_load_balance(p);

    if (config_.detection == DetectionMode::kOracle) {
      const auto snap =
          algo::oracle_probe(*fleet_, lb_in_flight(), config_.tolerance);
      if (snap.converged) {
        detection_gap_ = snap.max_gap;
        detection_max_residual_ = snap.max_residual;
        stop_all(/*converged=*/true);
        return;
      }
    } else {
      protocol_->on_iteration_end(p);
    }

    // Event-driven idling: nothing changed and nothing new arrived — sleep
    // until the next message instead of spinning through no-op iterations.
    const bool no_progress =
        stats.residual == 0.0 && stats.newton_iterations == 0;
    if (config_.scheme == Scheme::kAIAC && config_.event_driven_idle &&
        no_progress && core.inputs_quiescent() && core.locally_converged()) {
      proc.dormant = true;
      return;
    }

    try_start(p);
    // A sync-scheme neighbor may have been waiting for this iteration's
    // data; its start is triggered by the delivery events.
  }

  // ---- Load balancing -----------------------------------------------

  void try_load_balance(std::size_t p) {
    algo::ProcessorCore& core = fleet_->core(p);
    if (!core.lb_trigger_due()) return;
    const bool left_busy = p > 0 && lb_link_busy_[p - 1];
    const bool right_busy = p + 1 < procs_.size() && lb_link_busy_[p];
    const auto decision = core.plan_migration(left_busy, right_busy);
    if (decision.action == lb::BalanceDecision::Action::kNone) return;

    const bool to_left =
        decision.action == lb::BalanceDecision::Action::kSendLeft;
    const Side side = to_left ? Side::kLeft : Side::kRight;
    auto payload = core.extract_migration(side, decision.amount);
    if (!payload) return;
    lb_link_busy_[to_left ? p - 1 : p] = true;
    send_migration(p, side, std::move(*payload));
  }

  bool lb_in_flight() const {
    return std::any_of(lb_link_busy_.begin(), lb_link_busy_.end(),
                       [](bool busy) { return busy; });
  }

  // ---- Halting ------------------------------------------------------

  void record_detection_audit() {
    const algo::OracleSnapshot snap = algo::measured_audit(*fleet_);
    detection_gap_ = snap.max_gap;
    detection_max_residual_ = snap.max_residual;
  }

  void stop_all(bool converged) {
    if (stopped_) return;
    stopped_ = true;
    result_converged_ = converged;
    execution_time_ = sim_.now();
    sim_.stop();
  }

  // ---- Result assembly ----------------------------------------------

  EngineResult assemble_result() {
    // Recover migrations caught mid-flight by a stop, then drain queues,
    // so the solution trajectory covers every component exactly once.
    for (std::size_t link = 0; link < lb_link_inflight_.size(); ++link) {
      if (!lb_link_inflight_[link]) continue;
      auto& payload = *lb_link_inflight_[link];
      if (payload.direction == ode::MigrationPayload::Direction::kToLeft)
        fleet_->core(link).enqueue_migration(Side::kRight,
                                             std::move(payload));
      else
        fleet_->core(link + 1).enqueue_migration(Side::kLeft,
                                                 std::move(payload));
      lb_link_inflight_[link].reset();
    }
    for (std::size_t p = 0; p < procs_.size(); ++p)
      fleet_->core(p).drain_pending_migrations();

    EngineResult result;
    result.converged = result_converged_;
    result.execution_time = execution_time_ >= 0 ? execution_time_ : sim_.now();
    result.solution = ode::Trajectory(system_.dimension(), config_.num_steps);
    result.min_components_observed = procs_.empty() ? 0 : SIZE_MAX;
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      const algo::ProcessorCore& core = fleet_->core(p);
      core.block().copy_local_into(result.solution);
      result.total_iterations += core.iteration();
      result.iterations_per_processor.push_back(core.iteration());
      result.final_components.push_back(core.components());
      result.total_work += core.total_work();
      result.migrations += core.migrations_out();
      result.components_migrated += core.components_out();
      result.bytes_sent += core.lb_bytes_out();
      result.min_components_observed =
          std::min(result.min_components_observed, core.min_components_seen());
      if (!std::isinf(core.last_residual()))
        result.final_max_residual =
            std::max(result.final_max_residual, core.last_residual());
    }
    if (trace_) {
      for (std::size_t p = 0; p < procs_.size(); ++p) {
        trace::CommsRecord& left = comms_to_left_[p];
        if (p > 0 && left.frames_sent > 0) {
          if (!delta_to_left_.empty())
            left.rows_suppressed = delta_to_left_[p].rows_suppressed();
          left.bytes_received = comms_to_right_[p - 1].bytes_sent;
          trace_->record_comms(left);
        }
        trace::CommsRecord& right = comms_to_right_[p];
        if (p + 1 < procs_.size() && right.frames_sent > 0) {
          if (!delta_to_right_.empty())
            right.rows_suppressed = delta_to_right_[p].rows_suppressed();
          right.bytes_received = comms_to_left_[p + 1].bytes_sent;
          trace_->record_comms(right);
        }
      }
    }
    result.lb_messages = result.migrations;
    result.data_messages = result_data_messages_;
    result.control_messages = result_control_messages_;
    result.bytes_sent += result_bytes_;
    result.detection_gap = detection_gap_;
    result.detection_max_residual = detection_max_residual_;
    return result;
  }

  const ode::OdeSystem& system_;
  grid::Grid& grid_;
  EngineConfig config_;
  trace::ExecutionTrace* trace_;
  des::Simulator sim_;
  std::unique_ptr<algo::CoreFleet> fleet_;
  /// Shared intra-iterate worker pool (null when intra_threads <= 1 or
  /// the machine has a single hardware thread). The event loop runs one
  /// core's iterate at a time on this thread, so one pool serves all.
  std::unique_ptr<runtime::WorkerPool> intra_pool_;
  std::unique_ptr<algo::DetectionProtocol> protocol_;

  std::vector<Proc> procs_;
  /// Byte-accounting planners per directed link (empty when delta framing
  /// is disabled) and the per-link comms tallies they feed. The event
  /// loop is single-threaded, so one delta scratch serves every link.
  std::vector<ode::BoundaryDeltaSender> delta_to_left_;
  std::vector<ode::BoundaryDeltaSender> delta_to_right_;
  ode::BoundaryDeltaMessage delta_scratch_;
  std::vector<trace::CommsRecord> comms_to_left_;
  std::vector<trace::CommsRecord> comms_to_right_;
  std::vector<bool> lb_link_busy_;
  std::vector<std::optional<ode::MigrationPayload>> lb_link_inflight_;
  /// Earliest time each directed neighbor link is free to deliver the
  /// next data frame (see link_delivery_time): [link][0] rightward,
  /// [link][1] leftward.
  std::vector<std::array<double, 2>> link_clear_;
  // Departure times for the boundary messages of the iteration currently
  // being started (set immediately before ProcessorCore::emit_boundaries).
  double staged_left_depart_ = 0.0;
  double staged_right_depart_ = 0.0;

  bool stopped_ = false;
  bool result_converged_ = false;
  double execution_time_ = -1.0;
  double detection_gap_ = -1.0;
  double detection_max_residual_ = -1.0;
  std::size_t result_data_messages_ = 0;
  std::size_t result_control_messages_ = 0;
  std::size_t result_bytes_ = 0;
};

}  // namespace

EngineResult run_simulated(const ode::OdeSystem& system, grid::Grid& grid,
                           const EngineConfig& config,
                           trace::ExecutionTrace* trace) {
  SimEngine engine(system, grid, config, trace);
  return engine.run();
}

}  // namespace aiac::core
