#include "core/sim_engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>

#include "des/simulator.hpp"
#include "lb/iterative_schemes.hpp"
#include "ode/waveform.hpp"
#include "util/log.hpp"

namespace aiac::core {

std::string to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSISC: return "SISC";
    case Scheme::kSIAC: return "SIAC";
    case Scheme::kAIAC: return "AIAC";
  }
  return "?";
}

std::string to_string(DetectionMode mode) {
  switch (mode) {
    case DetectionMode::kOracle: return "oracle";
    case DetectionMode::kCoordinator: return "coordinator";
    case DetectionMode::kTokenRing: return "token-ring";
  }
  return "?";
}

namespace {

class SimEngine {
 public:
  SimEngine(const ode::OdeSystem& system, grid::Grid& grid,
            const EngineConfig& config, trace::ExecutionTrace* trace)
      : system_(system), grid_(grid), config_(config), trace_(trace) {
    const std::size_t nprocs = grid.process_count();
    if (nprocs == 0) throw std::invalid_argument("SimEngine: no processors");
    estimator_ = lb::make_estimator(config.estimator);
    balancer_ = std::make_unique<lb::NeighborBalancer>(config.balancer);
    stencil_ = system.stencil_halfwidth();
    min_keep_ = std::max(config.balancer.min_components, stencil_ + 1);

    const auto starts = initial_partition(nprocs);
    procs_.resize(nprocs);
    for (std::size_t p = 0; p < nprocs; ++p) {
      ode::WaveformBlockConfig bc;
      bc.first = starts[p];
      bc.count = starts[p + 1] - starts[p];
      if (bc.count < stencil_ + 1)
        throw std::invalid_argument(
            "SimEngine: partition leaves a processor with fewer than "
            "stencil+1 components; use fewer processors or a larger system");
      bc.num_steps = config.num_steps;
      bc.t_end = config.t_end;
      bc.mode = config.solve_mode;
      bc.newton = config.newton;
      bc.receive_filter = config.tolerance * config.receive_filter_factor;
      procs_[p].block = std::make_unique<ode::WaveformBlock>(system_, bc);
      procs_[p].ok_to_try_lb = config.balancer.trigger_period;
    }
    lb_link_busy_.assign(nprocs > 0 ? nprocs - 1 : 0, false);
    lb_link_inflight_.resize(nprocs > 0 ? nprocs - 1 : 0);
    coordinator_converged_.assign(nprocs, false);
    if (trace_) trace_->set_processor_count(nprocs);
  }

  EngineResult run() {
    for (std::size_t p = 0; p < procs_.size(); ++p) try_start(p);
    sim_.run(/*max_events=*/200'000'000ULL);
    return assemble_result();
  }

 private:
  struct Proc {
    std::unique_ptr<ode::WaveformBlock> block;
    std::size_t iteration = 0;  // completed iterations
    bool computing = false;
    bool waiting = false;  // sync schemes: blocked on neighbor data
    bool halted = false;

    // Latest boundary data received, incorporated at iteration start.
    std::optional<ode::BoundaryMessage> inbox_from_left;
    std::optional<ode::BoundaryMessage> inbox_from_right;
    // Highest neighbor iteration whose data has been delivered here.
    std::size_t left_data_iteration = 0;
    std::size_t right_data_iteration = 0;

    // Migrations awaiting absorption (FIFO per side).
    std::deque<ode::MigrationPayload> pending_from_left;
    std::deque<ode::MigrationPayload> pending_from_right;

    // Neighbor load estimates (piggybacked on boundary data).
    std::optional<double> left_load;
    std::optional<double> right_load;

    // Mutual exclusion on data sends (paper's AIAC variant, Fig. 4).
    bool send_left_busy = false;
    bool send_right_busy = false;
    // A send skipped because the link was busy; retried when it clears
    // (the spinning loop of the real runtime would retry likewise).
    bool send_left_pending = false;
    bool send_right_pending = false;

    /// Event-driven idling: an AIAC processor whose iteration changed
    /// nothing and whose inbox is empty sleeps until the next message
    /// (iterating on unchanged data is a no-op; the paper's runtime spins
    /// through such iterations, with identical observable behaviour).
    bool dormant = false;

    std::size_t ok_to_try_lb = 20;

    /// Set when components were absorbed whose residual is not yet
    /// reflected in last_residual; blocks the convergence oracle until the
    /// next iteration completes.
    bool residual_stale = false;

    double last_residual = std::numeric_limits<double>::infinity();
    double last_iteration_seconds = 0.0;
    double last_iteration_work = 0.0;
    std::size_t under_tol_streak = 0;
    bool reported_converged = false;  // coordinator mode
  };

  std::vector<std::size_t> initial_partition(std::size_t nprocs) const {
    if (config_.initial_partition == InitialPartition::kSpeedWeighted) {
      std::vector<double> speeds(nprocs);
      for (std::size_t p = 0; p < nprocs; ++p)
        speeds[p] = grid_.machine_of(p).peak_speed();
      return lb::speed_weighted_partition(system_.dimension(), speeds,
                                          stencil_ + 1);
    }
    return ode::even_partition(system_.dimension(), nprocs);
  }

  bool ready_to_start(const Proc& proc, std::size_t p) const {
    if (config_.scheme == Scheme::kAIAC) return true;
    // Sync schemes: need both neighbors' data from our completed-iteration
    // count before starting the next one (iteration 1 needs nothing:
    // initial ghosts are the initial condition).
    if (proc.iteration == 0) return true;
    if (p > 0 && proc.left_data_iteration < proc.iteration) return false;
    if (p + 1 < procs_.size() && proc.right_data_iteration < proc.iteration)
      return false;
    return true;
  }

  void try_start(std::size_t p) {
    Proc& proc = procs_[p];
    if (proc.computing || proc.halted || stopped_) return;
    proc.dormant = false;
    if (!ready_to_start(proc, p)) {
      proc.waiting = true;
      return;
    }
    proc.waiting = false;
    proc.computing = true;
    sim_.schedule_after(0.0, [this, p] { start_iteration(p); });
  }

  void start_iteration(std::size_t p) {
    Proc& proc = procs_[p];
    if (proc.halted || stopped_) {
      proc.computing = false;
      return;
    }
    const double t_start = sim_.now();

    absorb_pending_migrations(p);
    incorporate_boundary_data(p);

    // The real numerics. Conceptually they occupy the virtual interval
    // [t_start, t_start + duration); messages delivered inside that window
    // are only visible to the *next* iteration, which is why they are
    // buffered in the inbox rather than applied to the block directly.
    const std::size_t components = proc.block->count();
    const auto stats = proc.block->iterate();
    const double work = stats.work + config_.iteration_overhead_work;
    const double duration = grid_.compute_duration(
        p, work, t_start, static_cast<double>(components));

    // Capture outgoing boundary data now (it is the new iterate) and
    // schedule its departure according to the scheme.
    schedule_boundary_sends(p, t_start, duration);

    sim_.schedule_at(t_start + duration, [this, p, stats, t_start, components] {
      finish_iteration(p, stats, t_start, components);
    });
  }

  void schedule_boundary_sends(std::size_t p, double t_start,
                               double duration) {
    Proc& proc = procs_[p];
    const bool early = config_.scheme != Scheme::kSISC;
    const double left_depart =
        t_start + (early ? config_.early_send_fraction * duration : duration);
    const double right_depart = t_start + duration;

    if (p > 0) {
      auto msg = proc.block->boundary_for_left();
      stamp_message(proc, msg);
      sim_.schedule_at(left_depart, [this, p, msg = std::move(msg)] {
        dispatch_boundary(p, p - 1, msg, /*to_left=*/true);
      });
    }
    if (p + 1 < procs_.size()) {
      auto msg = proc.block->boundary_for_right();
      stamp_message(proc, msg);
      sim_.schedule_at(right_depart, [this, p, msg = std::move(msg)] {
        dispatch_boundary(p, p + 1, msg, /*to_left=*/false);
      });
    }
  }

  void stamp_message(const Proc& proc, ode::BoundaryMessage& msg) const {
    msg.sender_iteration = proc.iteration + 1;  // the iteration being run
    msg.sender_components = proc.block->count();
    lb::NodeLoadInputs inputs;
    // The residual of the iteration in progress is not known when the
    // message is captured; the paper sends "the residual of previous
    // iteration" with the leftward data — we do the same for both sides.
    inputs.residual = std::isinf(proc.last_residual) ? 1.0
                                                     : proc.last_residual;
    inputs.last_iteration_seconds = proc.last_iteration_seconds;
    inputs.last_iteration_work = proc.last_iteration_work;
    inputs.components = proc.block->count();
    msg.sender_residual = inputs.residual;
    msg.sender_load = estimator_->estimate(inputs);
  }

  void dispatch_boundary(std::size_t src, std::size_t dst,
                         const ode::BoundaryMessage& msg, bool to_left) {
    if (stopped_) return;
    Proc& sender = procs_[src];
    // AIAC mutual exclusion: skip this send if the previous one on the
    // same link has not completed yet (paper Fig. 4 dashed lines).
    bool& busy = to_left ? sender.send_left_busy : sender.send_right_busy;
    if (config_.scheme == Scheme::kAIAC && busy) {
      // Remember to retry when the link clears, so a processor that goes
      // idle afterwards still propagates its final values.
      (to_left ? sender.send_left_pending : sender.send_right_pending) = true;
      return;
    }
    busy = true;
    const double sent = sim_.now();
    const double delay =
        grid_.message_delay(src, dst, msg.byte_size(), sent);
    ++result_data_messages_;
    result_bytes_ += msg.byte_size();
    if (trace_)
      trace_->record_message({src, dst, sent, sent + delay, msg.byte_size(),
                              trace::MessageKind::kBoundaryData});
    sim_.schedule_at(sent + delay, [this, src, dst, msg, to_left] {
      deliver_boundary(src, dst, msg, to_left);
    });
  }

  void deliver_boundary(std::size_t src, std::size_t dst,
                        const ode::BoundaryMessage& msg, bool to_left) {
    Proc& sender = procs_[src];
    (to_left ? sender.send_left_busy : sender.send_right_busy) = false;
    if (stopped_) return;
    bool& pending =
        to_left ? sender.send_left_pending : sender.send_right_pending;
    if (pending) {
      pending = false;
      auto fresh = to_left ? sender.block->boundary_for_left()
                           : sender.block->boundary_for_right();
      stamp_message(sender, fresh);
      dispatch_boundary(src, dst, fresh, to_left);
    }
    Proc& receiver = procs_[dst];
    if (to_left) {
      // src = dst + 1: the receiver gets data from its right neighbor.
      receiver.inbox_from_right = msg;
      receiver.right_data_iteration =
          std::max(receiver.right_data_iteration, msg.sender_iteration);
      receiver.right_load = msg.sender_load;
    } else {
      receiver.inbox_from_left = msg;
      receiver.left_data_iteration =
          std::max(receiver.left_data_iteration, msg.sender_iteration);
      receiver.left_load = msg.sender_load;
    }
    if (receiver.waiting || receiver.dormant) try_start(dst);
  }

  void incorporate_boundary_data(std::size_t p) {
    Proc& proc = procs_[p];
    if (proc.inbox_from_left) {
      // Position check (paper Algorithm 7): silently dropped when the
      // arrays are mid-resize and the positions no longer line up.
      (void)proc.block->accept_left_ghosts(*proc.inbox_from_left);
      proc.inbox_from_left.reset();
    }
    if (proc.inbox_from_right) {
      (void)proc.block->accept_right_ghosts(*proc.inbox_from_right);
      proc.inbox_from_right.reset();
    }
  }

  void absorb_pending_migrations(std::size_t p) {
    Proc& proc = procs_[p];
    while (!proc.pending_from_left.empty()) {
      proc.block->absorb_from_left(proc.pending_from_left.front());
      proc.pending_from_left.pop_front();
      lb_link_busy_[p - 1] = false;  // p > 0 whenever data comes from left
      proc.residual_stale = true;
    }
    while (!proc.pending_from_right.empty()) {
      proc.block->absorb_from_right(proc.pending_from_right.front());
      proc.pending_from_right.pop_front();
      lb_link_busy_[p] = false;
      proc.residual_stale = true;
    }
  }

  void finish_iteration(std::size_t p, ode::WaveformBlock::IterationStats stats,
                        double t_start, std::size_t components) {
    Proc& proc = procs_[p];
    proc.computing = false;
    if (stopped_) return;
    const double now = sim_.now();
    proc.iteration += 1;
    proc.residual_stale = false;  // this iterate covers any absorbed rows
    proc.last_residual = stats.residual;
    proc.last_iteration_seconds = now - t_start;
    proc.last_iteration_work = stats.work;
    result_total_work_ += stats.work;
    if (stats.residual <= config_.tolerance)
      proc.under_tol_streak += 1;
    else
      proc.under_tol_streak = 0;

    if (trace_)
      trace_->record_iteration({p, proc.iteration, t_start, now, stats.work,
                                stats.residual, components});

    if (proc.iteration >= config_.max_iterations_per_processor ||
        now >= config_.max_virtual_time) {
      stop_all(/*converged=*/false);
      return;
    }

    if (config_.load_balancing) try_load_balance(p);

    switch (config_.detection) {
      case DetectionMode::kOracle:
        if (oracle_globally_converged()) {
          stop_all(/*converged=*/true);
          return;
        }
        break;
      case DetectionMode::kCoordinator:
        coordinator_report(p);
        break;
      case DetectionMode::kTokenRing:
        if (token_holder_ == p && !token_in_flight_) handle_token(p);
        break;
    }

    // Event-driven idling: nothing changed and nothing new arrived — sleep
    // until the next message instead of spinning through no-op iterations.
    const bool no_progress =
        stats.residual == 0.0 && stats.newton_iterations == 0;
    if (config_.scheme == Scheme::kAIAC && config_.event_driven_idle &&
        no_progress && !proc.inbox_from_left && !proc.inbox_from_right &&
        proc.pending_from_left.empty() && proc.pending_from_right.empty() &&
        proc.under_tol_streak >= config_.persistence) {
      proc.dormant = true;
      return;
    }

    try_start(p);
    // A sync-scheme neighbor may have been waiting for this iteration's
    // data; its start is triggered by the delivery events.
  }

  // ---- Load balancing -----------------------------------------------

  void try_load_balance(std::size_t p) {
    Proc& proc = procs_[p];
    if (proc.ok_to_try_lb > 0) {
      proc.ok_to_try_lb -= 1;
      return;
    }
    lb::BalanceView view;
    lb::NodeLoadInputs inputs;
    inputs.residual = proc.last_residual;
    inputs.last_iteration_seconds = proc.last_iteration_seconds;
    inputs.last_iteration_work = proc.last_iteration_work;
    inputs.components = proc.block->count();
    view.my_load = estimator_->estimate(inputs);
    view.my_components = proc.block->count();
    if (p > 0) {
      view.left_load = proc.left_load;
      view.left_link_busy = lb_link_busy_[p - 1];
    }
    if (p + 1 < procs_.size()) {
      view.right_load = proc.right_load;
      view.right_link_busy = lb_link_busy_[p];
    }
    const auto decision = balancer_->decide(view);
    if (decision.action == lb::BalanceDecision::Action::kNone) return;

    // Clamp to the block's structural famine guard.
    std::size_t amount = decision.amount;
    const std::size_t count = proc.block->count();
    if (count <= min_keep_) return;
    amount = std::min(amount, count - min_keep_);
    if (amount == 0) return;

    const bool to_left =
        decision.action == lb::BalanceDecision::Action::kSendLeft;
    const std::size_t dst = to_left ? p - 1 : p + 1;
    const std::size_t link = to_left ? p - 1 : p;

    auto payload = to_left ? proc.block->extract_for_left(amount)
                           : proc.block->extract_for_right(amount);
    lb_link_busy_[link] = true;
    proc.ok_to_try_lb = config_.balancer.trigger_period;

    const double now = sim_.now();
    const double delay =
        grid_.message_delay(p, dst, payload.byte_size(), now);
    ++result_lb_messages_;
    ++result_migrations_;
    result_components_migrated_ += amount;
    result_bytes_ += payload.byte_size();
    if (trace_) {
      trace_->record_message({p, dst, now, now + delay, payload.byte_size(),
                              trace::MessageKind::kLoadBalance});
      trace_->record_migration({p, dst, now, amount});
    }
    AIAC_DEBUG("lb") << "t=" << now << " proc " << p << " sends " << amount
                     << " components " << (to_left ? "left" : "right");

    lb_link_inflight_[link] = payload;  // recoverable if we stop mid-flight
    sim_.schedule_at(now + delay, [this, p, dst, link,
                                   payload = std::move(payload), to_left] {
      lb_link_inflight_[link].reset();
      if (stopped_) return;
      Proc& receiver = procs_[dst];
      if (to_left)
        receiver.pending_from_right.push_back(payload);
      else
        receiver.pending_from_left.push_back(payload);
      // The link stays busy until the receiver absorbs the payload at its
      // next iteration start, which serializes migrations per link.
      if (receiver.waiting || receiver.dormant) try_start(dst);
    });
  }

  // ---- Convergence --------------------------------------------------

  bool oracle_globally_converged() const {
    for (const auto& proc : procs_) {
      if (proc.iteration == 0 || proc.residual_stale) return false;
      if (!(proc.last_residual <= config_.tolerance)) return false;
    }
    for (bool busy : lb_link_busy_)
      if (busy) return false;
    // Local residuals are not sufficient for AIAC: a processor whose ghost
    // data stopped arriving reports a zero residual over stale values. The
    // oracle additionally demands that every shared interface is
    // consistent across neighbors.
    for (std::size_t p = 0; p + 1 < procs_.size(); ++p) {
      if (procs_[p].block->interface_gap_with_right(*procs_[p + 1].block) >
          config_.tolerance)
        return false;
    }
    return true;
  }

  void coordinator_report(std::size_t p) {
    Proc& proc = procs_[p];
    const bool now_converged = proc.under_tol_streak >= config_.persistence;
    if (now_converged == proc.reported_converged) return;
    proc.reported_converged = now_converged;
    const double now = sim_.now();
    const double delay = p == 0 ? 0.0
                                : grid_.message_delay(
                                      p, 0, config_.control_message_bytes, now);
    ++result_control_messages_;
    result_bytes_ += config_.control_message_bytes;
    if (trace_ && p != 0)
      trace_->record_message({p, 0, now, now + delay,
                              config_.control_message_bytes,
                              trace::MessageKind::kControl});
    sim_.schedule_at(now + delay, [this, p, now_converged] {
      if (stopped_ || halting_) return;
      coordinator_converged_[p] = now_converged;
      if (std::all_of(coordinator_converged_.begin(),
                      coordinator_converged_.end(),
                      [](bool b) { return b; }))
        broadcast_halt();
    });
  }

  // ---- Token-ring detection -----------------------------------------

  /// Processes the token at node p: fold in p's local convergence state,
  /// halt after a full converged lap, otherwise pass it on.
  void handle_token(std::size_t p) {
    if (halting_ || stopped_) return;
    Proc& proc = procs_[p];
    const bool converged = proc.under_tol_streak >= config_.persistence;
    token_count_ = converged ? token_count_ + 1 : 0;
    if (token_count_ >= procs_.size()) {
      broadcast_halt();
      return;
    }
    const std::size_t next = (p + 1) % procs_.size();
    const double now = sim_.now();
    const double delay =
        grid_.message_delay(p, next, config_.control_message_bytes, now);
    token_in_flight_ = true;
    ++result_control_messages_;
    result_bytes_ += config_.control_message_bytes;
    if (trace_)
      trace_->record_message({p, next, now, now + delay,
                              config_.control_message_bytes,
                              trace::MessageKind::kControl});
    sim_.schedule_at(now + delay, [this, next] {
      token_in_flight_ = false;
      token_holder_ = next;
      if (stopped_ || halting_) return;
      // A busy node folds the token in at its next iteration end; an idle
      // one (dormant or waiting) must process it now or the ring stalls.
      if (!procs_[next].computing) handle_token(next);
    });
  }

  void broadcast_halt() {
    halting_ = true;
    const double now = sim_.now();
    double last_delivery = now;
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      const double delay =
          p == 0 ? 0.0
                 : grid_.message_delay(0, p, config_.control_message_bytes,
                                       now);
      last_delivery = std::max(last_delivery, now + delay);
      ++result_control_messages_;
      result_bytes_ += config_.control_message_bytes;
      sim_.schedule_at(now + delay, [this, p] {
        procs_[p].halted = true;
        if (std::all_of(procs_.begin(), procs_.end(),
                        [](const Proc& q) { return q.halted; }))
          stop_all(/*converged=*/true);
      });
    }
  }

  void stop_all(bool converged) {
    if (stopped_) return;
    stopped_ = true;
    result_converged_ = converged;
    execution_time_ = sim_.now();
    sim_.stop();
  }

  // ---- Result assembly ----------------------------------------------

  EngineResult assemble_result() {
    // Recover migrations caught mid-flight by a stop, then drain queues,
    // so the solution trajectory covers every component exactly once.
    for (std::size_t link = 0; link < lb_link_inflight_.size(); ++link) {
      if (!lb_link_inflight_[link]) continue;
      auto& payload = *lb_link_inflight_[link];
      if (payload.direction == ode::MigrationPayload::Direction::kToLeft)
        procs_[link].pending_from_right.push_back(std::move(payload));
      else
        procs_[link + 1].pending_from_left.push_back(std::move(payload));
      lb_link_inflight_[link].reset();
    }
    for (std::size_t p = 0; p < procs_.size(); ++p)
      absorb_pending_migrations(p);

    EngineResult result;
    result.converged = result_converged_;
    result.execution_time = execution_time_ >= 0 ? execution_time_ : sim_.now();
    result.solution = ode::Trajectory(system_.dimension(), config_.num_steps);
    for (auto& proc : procs_) proc.block->copy_local_into(result.solution);
    result.iterations_per_processor.reserve(procs_.size());
    result.final_components.reserve(procs_.size());
    for (const auto& proc : procs_) {
      result.total_iterations += proc.iteration;
      result.iterations_per_processor.push_back(proc.iteration);
      result.final_components.push_back(proc.block->count());
      if (!std::isinf(proc.last_residual))
        result.final_max_residual =
            std::max(result.final_max_residual, proc.last_residual);
    }
    result.total_work = result_total_work_;
    result.data_messages = result_data_messages_;
    result.lb_messages = result_lb_messages_;
    result.control_messages = result_control_messages_;
    result.bytes_sent = result_bytes_;
    result.migrations = result_migrations_;
    result.components_migrated = result_components_migrated_;
    return result;
  }

  const ode::OdeSystem& system_;
  grid::Grid& grid_;
  EngineConfig config_;
  trace::ExecutionTrace* trace_;
  des::Simulator sim_;
  std::unique_ptr<lb::LoadEstimator> estimator_;
  std::unique_ptr<lb::NeighborBalancer> balancer_;
  std::size_t stencil_ = 0;
  std::size_t min_keep_ = 0;

  std::vector<Proc> procs_;
  std::vector<bool> lb_link_busy_;
  std::vector<std::optional<ode::MigrationPayload>> lb_link_inflight_;
  std::vector<bool> coordinator_converged_;
  std::size_t token_holder_ = 0;  // token-ring mode: current holder
  std::size_t token_count_ = 0;   // consecutively-converged nodes seen
  bool token_in_flight_ = false;
  bool halting_ = false;
  bool stopped_ = false;
  bool result_converged_ = false;
  double execution_time_ = -1.0;
  double result_total_work_ = 0.0;
  std::size_t result_data_messages_ = 0;
  std::size_t result_lb_messages_ = 0;
  std::size_t result_control_messages_ = 0;
  std::size_t result_bytes_ = 0;
  std::size_t result_migrations_ = 0;
  std::size_t result_components_migrated_ = 0;
};

}  // namespace

EngineResult run_simulated(const ode::OdeSystem& system, grid::Grid& grid,
                           const EngineConfig& config,
                           trace::ExecutionTrace* trace) {
  SimEngine engine(system, grid, config, trace);
  return engine.run();
}

}  // namespace aiac::core
