// Shared configuration and result types for the parallel iterative
// engines (simulated and threaded backends).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "algo/types.hpp"
#include "lb/balancer.hpp"
#include "lb/estimators.hpp"
#include "ode/newton.hpp"
#include "ode/trajectory.hpp"
#include "ode/waveform_block.hpp"
#include "runtime/fault_injector.hpp"

namespace aiac::core {

// The algorithm vocabulary (Scheme, DetectionMode, InitialPartition) lives
// with the backend-agnostic algorithm layer in algo/types.hpp; re-exported
// here so existing driver-level call sites keep reading core::Scheme etc.
using algo::DetectionMode;
using algo::InitialPartition;
using algo::Scheme;
using algo::to_string;

struct EngineConfig {
  Scheme scheme = Scheme::kAIAC;

  // Problem discretization.
  std::size_t num_steps = 100;
  double t_end = 10.0;
  ode::LocalSolveMode solve_mode = ode::LocalSolveMode::kBlockNewton;
  ode::NewtonOptions newton = {};
  /// Intra-processor parallelism: each processor's iterate is sharded
  /// into this many row chunks (a *numerics* parameter — the chunk count
  /// alone determines the per-iterate values, see WaveformBlockConfig::
  /// intra_chunks), and the driver attaches a runtime::WorkerPool whose
  /// worker-thread count is capped against the machine so processors ×
  /// intra_threads never oversubscribes hardware_concurrency (DESIGN.md
  /// §13; on a saturated machine the chunks simply run inline, with
  /// identical results). 1 = the classic serial iterate.
  std::size_t intra_threads = 1;

  // Outer convergence.
  double tolerance = 1e-8;
  /// Receive-side significance filter as a fraction of `tolerance`
  /// (flexible communication, the paper's ref [4]): boundary updates
  /// within tolerance * receive_filter_factor of the stored ghosts are
  /// not applied, letting converged regions stall exactly and iterate at
  /// near-zero cost. 0 disables.
  double receive_filter_factor = 0.01;

  // Delta-encoded boundary frames (DESIGN.md §14). The socket backend
  // negotiates the feature in Hello and thins each boundary send down to
  // the rows that moved; the sim/thread engines deliver full values but
  // charge the same bytes-on-wire metric so cross-engine byte accounting
  // stays comparable.
  /// Master switch: when false the feature is never advertised and every
  /// backend charges full-frame sizes.
  bool delta_boundaries = true;
  /// Sender-side thinning threshold as a fraction of `tolerance`, like
  /// receive_filter_factor: a row rides a delta only once some value
  /// moved more than tolerance * delta_threshold_factor from the last
  /// full frame. Defaults to the receive filter's factor so thinning
  /// introduces no error the filter does not already tolerate.
  double delta_threshold_factor = 0.01;
  /// Forced full refresh after this many consecutive delta sends per
  /// link, bounding how long an epoch-desynced receiver can stay stale.
  std::size_t delta_refresh_period = 32;

  std::size_t max_iterations_per_processor = 500000;
  double max_virtual_time = 1e9;  // safety stop, virtual seconds

  // Load balancing (paper §5.2).
  bool load_balancing = false;
  lb::BalancerConfig balancer = {};
  lb::EstimatorKind estimator = lb::EstimatorKind::kResidual;

  InitialPartition initial_partition = InitialPartition::kEven;
  /// Relative processor speeds for the speed-weighted partition. The
  /// simulated backend defaults to its grid machines' peak speeds and
  /// treats a non-empty vector as an override; the threaded backend runs
  /// on identical cores, so empty means uniform (the speed-weighted split
  /// then degenerates to the even one). Size must match the processor
  /// count when non-empty.
  std::vector<double> processor_speeds;

  // Timing model.
  /// Fixed per-iteration work overhead (loop management, residual
  /// computation, convergence bookkeeping), in work units.
  double iteration_overhead_work = 1.0;
  /// SIAC/AIAC dispatch the leftward boundary data early in the iteration
  /// (paper Fig. 2-4: "the first half of data is sent as soon as
  /// updated"); this is the fraction of the iteration after which it
  /// leaves. SISC sends everything at the end.
  double early_send_fraction = 0.1;

  /// Event-driven idling: an AIAC processor whose iteration changed
  /// nothing and whose inbox is empty sleeps until the next message
  /// arrives. The paper's runtime spins through such no-op iterations
  /// instead; disable to reproduce that behaviour (identical numerics,
  /// busy-looking execution flow).
  bool event_driven_idle = true;

  // Fault injection (threaded backend only; the virtual-time engine's
  // perturbations come from its grid model instead). Off by default, in
  // which case the engine is bit-identical to a build without the chaos
  // layer. See runtime/fault_injector.hpp and DESIGN.md "Fault model".
  runtime::FaultConfig faults = {};

  // Convergence detection.
  DetectionMode detection = DetectionMode::kOracle;
  /// Consecutive under-tolerance iterations before a node reports local
  /// convergence to the coordinator (kCoordinator mode).
  std::size_t persistence = 3;
  std::size_t control_message_bytes = 64;
};

struct EngineResult {
  bool converged = false;
  /// Human-readable cause when the run stopped without converging (budget
  /// exhaustion, a peer process going down on the socket backend, ...);
  /// empty on a clean converged run. Shared by all three drivers so
  /// launchers report one field instead of backend-specific state.
  std::string failure_reason;
  /// Virtual seconds (simulated backend) or wall seconds (thread backend)
  /// from start to detected global convergence.
  double execution_time = 0.0;
  ode::Trajectory solution;

  std::size_t total_iterations = 0;
  std::vector<std::size_t> iterations_per_processor;
  std::vector<std::size_t> final_components;
  double total_work = 0.0;

  std::size_t data_messages = 0;
  std::size_t lb_messages = 0;
  std::size_t control_messages = 0;
  std::size_t bytes_sent = 0;
  std::size_t migrations = 0;
  std::size_t components_migrated = 0;

  double final_max_residual = 0.0;

  /// Chaos-layer events injected during the run (0 when disabled).
  std::size_t faults_injected = 0;
  /// Paper invariant instrumentation (both backends): smallest owned
  /// component count any processor ever held — after every iteration and,
  /// crucially, immediately after every migration extraction. The famine
  /// guard demands this never drops below the engine's minimum keep.
  std::size_t min_components_observed = 0;
  /// Detection audit (both backends, converged runs): the maximum
  /// interface gap and per-processor residual at the instant the halt
  /// decision was taken, over a quiescent view (every block lock held in
  /// the threaded backend). Under oracle detection both must be within
  /// tolerance or detection fired early; coordinator/token-ring record
  /// whatever the protocol actually guaranteed. -1 when not converged.
  double detection_gap = -1.0;
  double detection_max_residual = -1.0;
};

}  // namespace aiac::core
