// Threaded (PM²-like) backend: the paper's Algorithms 1-7 executed by real
// threads with genuine asynchronous message passing.
//
// One thread per virtual processor; boundary data travels through
// one-slot latest-value boxes (the shared-memory equivalent of the
// paper's mutual-exclusion-guarded asynchronous sends), load-balancing
// payloads through FIFO mailboxes, and each processor's Yold/Ynew arrays
// are protected by a mutex exactly where Algorithm 7 tests "if not
// accessing data array".
//
// At-most-one-migration-per-link is enforced with a per-link shared flag;
// in a fully distributed deployment this flag becomes a small token
// handshake, but this runtime is in-process (as PM² threads on one node
// share memory), so a flag preserves the algorithm's behaviour without a
// protocol digression (see DESIGN.md).
//
// On this container's single core the backend cannot show speedups — it
// exists to demonstrate and test the algorithm under real concurrency;
// the virtual-time engine (sim_engine.hpp) carries the measurements.
#pragma once

#include "core/config.hpp"
#include "ode/ode_system.hpp"
#include "trace/execution_trace.hpp"

namespace aiac::core {

/// Runs the configured scheme on `processors` threads. `execution_time`
/// in the result is wall-clock seconds. Timing-model fields of the config
/// (iteration_overhead_work, early_send_fraction) are ignored — durations
/// are measured, never modeled. All DetectionModes and InitialPartitions
/// are honored; the speed-weighted partition uses
/// `config.processor_speeds` (empty means uniform, degenerating to the
/// even split). When `config.faults.enabled`, the chaos layer perturbs
/// deliveries/compute per the seeded fault plans; if `trace` is non-null,
/// every injected fault is appended to it so the perturbed run stays
/// explainable.
EngineResult run_threaded(const ode::OdeSystem& system,
                          std::size_t processors, const EngineConfig& config,
                          trace::ExecutionTrace* trace = nullptr);

}  // namespace aiac::core
