#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace aiac::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Debiased modulo (Lemire-style rejection kept simple for determinism).
  const std::uint64_t threshold = (~range + 1) % range;  // 2^64 mod range
  std::uint64_t r;
  do {
    r = next();
  } while (r < threshold);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split(std::string_view name) const noexcept {
  return split(hash_name(name));
}

Rng Rng::split(std::uint64_t index) const noexcept {
  std::uint64_t sm = seed_ ^ (0x5851f42d4c957f2dULL * (index + 1));
  const std::uint64_t child = splitmix64(sm);
  return Rng(child);
}

}  // namespace aiac::util
