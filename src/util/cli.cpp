#include "util/cli.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace aiac::util {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void CliParser::describe(const std::string& key, const std::string& help,
                         const std::string& default_repr) {
  descriptions_.push_back({key, help, default_repr});
}

void CliParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliParser::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string CliParser::get_string(const std::string& key,
                                  std::string def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliParser::get_int(const std::string& key,
                                std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

double CliParser::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

bool CliParser::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + key + " expects a boolean, got '" +
                              it->second + "'");
}

std::string CliParser::help_text() const {
  std::ostringstream out;
  if (!summary_.empty()) out << summary_ << "\n\n";
  out << "Usage: " << (program_name_.empty() ? "program" : program_name_)
      << " [--key=value ...]\n";
  if (!descriptions_.empty()) {
    out << "Options:\n";
    std::size_t width = 0;
    for (const auto& d : descriptions_)
      width = std::max(width, d.key.size());
    for (const auto& d : descriptions_) {
      out << "  --" << d.key << std::string(width - d.key.size() + 2, ' ')
          << d.help;
      if (!d.default_repr.empty()) out << " [default: " << d.default_repr << "]";
      out << '\n';
    }
  }
  return out.str();
}

}  // namespace aiac::util
