#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace aiac::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::size_t ncols = header.size();
  for (const auto& r : rows) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> w(ncols, 0);
  for (std::size_t c = 0; c < header.size(); ++c)
    w[c] = std::max(w[c], header[c].size());
  for (const auto& r : rows)
    for (std::size_t c = 0; c < r.size(); ++c)
      w[c] = std::max(w[c], r[c].size());
  return w;
}

void print_separator(std::ostream& out, const std::vector<std::size_t>& w) {
  out << '+';
  for (std::size_t width : w) out << std::string(width + 2, '-') << '+';
  out << '\n';
}

void print_row(std::ostream& out, const std::vector<std::size_t>& w,
               const std::vector<std::string>& row) {
  out << '|';
  for (std::size_t c = 0; c < w.size(); ++c) {
    const std::string& cell = c < row.size() ? row[c] : std::string{};
    out << ' ' << cell << std::string(w[c] - cell.size() + 1, ' ') << '|';
  }
  out << '\n';
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

void Table::print(std::ostream& out) const {
  if (!title_.empty()) out << title_ << '\n';
  const auto w = column_widths(header_, rows_);
  if (w.empty()) return;
  print_separator(out, w);
  if (!header_.empty()) {
    print_row(out, w, header_);
    print_separator(out, w);
  }
  for (const auto& r : rows_) print_row(out, w, r);
  print_separator(out, w);
}

void Table::write_csv(std::ostream& out) const {
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace aiac::util
