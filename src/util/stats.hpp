// Small statistics toolkit used by the benchmark harnesses to aggregate
// repeated runs (the paper reports averages over series of executions).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace aiac::util {

/// Streaming mean/variance via Welford's algorithm; O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept;
  /// Merges another accumulator (parallel-friendly Chan et al. update).
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Computes a Summary; copies and sorts internally (input left untouched).
Summary summarize(std::span<const double> xs);

/// Linear-interpolation percentile, q in [0,1]. Requires sorted input.
double percentile_sorted(std::span<const double> sorted, double q);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Geometric mean; requires strictly positive values.
double geometric_mean(std::span<const double> xs);

/// Formats like "105.5 ± 3.2 (n=10)".
std::string format_mean_stddev(const OnlineStats& s, int precision = 1);

}  // namespace aiac::util
