#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace aiac::util {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile of empty span");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  OnlineStats acc;
  for (double x : sorted) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile_sorted(sorted, 0.25);
  s.median = percentile_sorted(sorted, 0.50);
  s.p75 = percentile_sorted(sorted, 0.75);
  return s;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("geometric mean of empty span");
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geometric mean needs x > 0");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

std::string format_mean_stddev(const OnlineStats& s, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << s.mean() << " ± " << s.stddev() << " (n=" << s.count() << ")";
  return out.str();
}

}  // namespace aiac::util
