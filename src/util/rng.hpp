// Deterministic random number generation for reproducible experiments.
//
// Every stochastic element of the simulation (network jitter, background
// load traces, initial perturbations) draws from an explicitly seeded
// stream so that a whole experiment is a pure function of its seed.
// Streams are split with SplitMix64 so that independently named substreams
// are statistically independent and insensitive to the order in which
// other streams consume numbers.
#pragma once

#include <cstdint>
#include <string_view>

namespace aiac::util {

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
///
/// Satisfies std::uniform_random_bit_generator so it can be plugged into
/// <random> distributions, but the convenience members below are preferred
/// because their results are identical across standard library
/// implementations (libstdc++/libc++ disagree on distribution algorithms).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state by running SplitMix64 on `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate) noexcept;
  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Derives an independent substream. The same (parent seed, name) pair
  /// always yields the same stream, regardless of how much the parent has
  /// been used: splitting hashes the *initial* seed, not the current state.
  Rng split(std::string_view name) const noexcept;
  /// Derives an independent substream indexed by an integer.
  Rng split(std::uint64_t index) const noexcept;

  /// The seed this stream was constructed with.
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// SplitMix64 single step; used for seeding and hashing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a 64-bit hash of a string, for stream naming.
std::uint64_t hash_name(std::string_view name) noexcept;

}  // namespace aiac::util
