// Leveled logging. Off by default in tests/benches; examples flip it on to
// narrate the iterative process (iterations, balancing decisions,
// convergence detection events).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace aiac::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Throws std::invalid_argument for anything else.
LogLevel parse_log_level(const std::string& name);

/// Thread-safe sink to stderr. `where` is a short component tag
/// (e.g. "lb", "engine", "des").
void log_message(LogLevel level, const std::string& where,
                 const std::string& message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string where)
      : level_(level), where_(std::move(where)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, where_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string where_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace aiac::util

// Stream-style macros; the stream expression is not evaluated when the
// level is filtered out.
#define AIAC_LOG(level, where)                                   \
  if (::aiac::util::log_level() > (level)) {                     \
  } else                                                         \
    ::aiac::util::detail::LogLine((level), (where))

#define AIAC_TRACE(where) AIAC_LOG(::aiac::util::LogLevel::kTrace, where)
#define AIAC_DEBUG(where) AIAC_LOG(::aiac::util::LogLevel::kDebug, where)
#define AIAC_INFO(where) AIAC_LOG(::aiac::util::LogLevel::kInfo, where)
#define AIAC_WARN(where) AIAC_LOG(::aiac::util::LogLevel::kWarn, where)
#define AIAC_ERROR(where) AIAC_LOG(::aiac::util::LogLevel::kError, where)
