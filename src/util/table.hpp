// ASCII table and CSV emission for benchmark harnesses. The bench binaries
// print the same rows/series the paper's tables and figures report; this
// keeps their formatting uniform and makes the output machine-readable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aiac::util {

/// Column-aligned ASCII table with an optional title, plus CSV export.
///
/// Usage:
///   Table t{"Table 1: heterogeneous grid"};
///   t.set_header({"version", "time (s)", "ratio"});
///   t.add_row({"non-balanced", "515.3", ""});
///   t.print(std::cout);
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Number of data rows (header excluded).
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Pretty-prints with box-drawing separators.
  void print(std::ostream& out) const;
  /// Emits RFC-4180-ish CSV (quotes fields containing commas/quotes).
  void write_csv(std::ostream& out) const;

  /// Convenience numeric formatting with fixed precision.
  static std::string num(double v, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aiac::util
