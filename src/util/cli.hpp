// Minimal command-line parsing for examples and benchmark binaries.
// Supports `--key=value`, `--key value`, and boolean `--flag` forms, with
// typed accessors and defaults, plus an auto-generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace aiac::util {

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help.
  CliParser(std::string program_summary = {});

  /// Declares an option for the help text. Declaration is optional: any
  /// --key passed on the command line is accepted either way.
  void describe(const std::string& key, const std::string& help,
                const std::string& default_repr = {});

  /// Parses argv. Throws std::invalid_argument on malformed input
  /// (e.g. a non-flag positional argument).
  void parse(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  /// Typed access with default. Throws std::invalid_argument if the value
  /// is present but unparsable as T.
  std::string get_string(const std::string& key, std::string def = {}) const;
  std::int64_t get_int(const std::string& key, std::int64_t def = 0) const;
  double get_double(const std::string& key, double def = 0.0) const;
  /// A bare `--flag` and `--flag=true/1/yes` are true; `=false/0/no` false.
  bool get_bool(const std::string& key, bool def = false) const;

  /// True when --help/-h was passed; callers should print help and exit 0.
  bool help_requested() const { return help_requested_; }
  std::string help_text() const;

  /// Raw key/value map (flags map to "true").
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  struct Description {
    std::string key;
    std::string help;
    std::string default_repr;
  };
  std::string summary_;
  std::string program_name_;
  std::vector<Description> descriptions_;
  std::map<std::string, std::string> values_;
  bool help_requested_ = false;
};

}  // namespace aiac::util
