#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <iostream>
#include <stdexcept>

#include "runtime/ordered_mutex.hpp"

namespace aiac::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Leaf rank: logging happens from anywhere, including under engine
// locks, and never acquires anything further — so ordering it last is
// both safe and checked.
runtime::OrderedMutex g_sink_mutex{runtime::kLeafRank};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string v = name;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "trace") return LogLevel::kTrace;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn" || v == "warning") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off" || v == "none") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

void log_message(LogLevel level, const std::string& where,
                 const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard<runtime::OrderedMutex> lock(g_sink_mutex);
  std::cerr << '[' << level_name(level) << "] (" << where << ") " << message
            << '\n';
}

}  // namespace aiac::util
