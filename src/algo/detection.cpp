#include "algo/detection.hpp"

#include <algorithm>
#include <cmath>

namespace aiac::algo {

DetectionProtocol::DetectionProtocol(DetectionMode mode,
                                     std::size_t processors,
                                     Transport& transport,
                                     DetectionDriver& driver)
    : mode_(mode),
      processors_(processors),
      transport_(&transport),
      driver_(&driver),
      reported_(processors, false),
      coordinator_view_(processors, false) {}

void DetectionProtocol::on_iteration_end(std::size_t rank) {
  if (halting_) return;
  switch (mode_) {
    case DetectionMode::kOracle:
      break;  // the driver probes globally itself
    case DetectionMode::kCoordinator:
      coordinator_report(rank);
      break;
    case DetectionMode::kTokenRing:
      if (token_holder_ == rank && !token_in_flight_) handle_token(rank);
      break;
  }
}

void DetectionProtocol::coordinator_report(std::size_t rank) {
  const bool now_converged = driver_->locally_converged(rank);
  if (now_converged == reported_[rank]) {
    // Heartbeat: a still-converged node pings the coordinator at every
    // iteration end. It re-arms verification after an aborted round —
    // without it, a round aborted by a node that was mid-iteration would
    // never retry once that node settles without flipping its report.
    if (now_converged)
      transport_->post_control(rank, 0,
                               [this] { maybe_begin_verification(); });
    return;
  }
  reported_[rank] = now_converged;
  transport_->post_control(rank, 0, [this, rank, now_converged] {
    if (halting_) return;
    coordinator_view_[rank] = now_converged;
    if (!now_converged) {
      // A node left convergence: abort any in-flight verification.
      verifying_ = false;
      verify_rearm_ = false;
      ++verify_epoch_;
      return;
    }
    maybe_begin_verification();
  });
}

void DetectionProtocol::maybe_begin_verification() {
  if (halting_) return;
  if (verifying_) {
    verify_rearm_ = true;
    return;
  }
  if (!std::all_of(coordinator_view_.begin(), coordinator_view_.end(),
                   [](bool b) { return b; }))
    return;
  verifying_ = true;
  verify_rearm_ = false;
  verify_acks_ = 0;
  const std::size_t epoch = ++verify_epoch_;
  for (std::size_t r = 0; r < processors_; ++r) {
    // Request evaluated at the destination when the control message
    // lands; the ack carries the verdict back to rank 0.
    transport_->post_control(0, r, [this, r, epoch] {
      if (halting_ || epoch != verify_epoch_) return;
      const bool ok = driver_->confirm_converged(r);
      transport_->post_control(r, 0, [this, epoch, ok] {
        if (halting_ || epoch != verify_epoch_) return;
        if (!ok) {
          verifying_ = false;
          ++verify_epoch_;
          if (verify_rearm_) maybe_begin_verification();
          return;
        }
        if (++verify_acks_ == processors_) halt();
      });
    });
  }
}

void DetectionProtocol::handle_token(std::size_t rank) {
  if (halting_) return;
  const bool converged = driver_->locally_converged(rank);
  token_count_ = converged ? token_count_ + 1 : 0;
  if (token_count_ >= processors_) {
    halt();
    return;
  }
  const std::size_t next = (rank + 1) % processors_;
  token_in_flight_ = true;
  transport_->post_control(rank, next, [this, next] {
    token_in_flight_ = false;
    token_holder_ = next;
    if (halting_) return;
    // A busy node folds the token in at its next iteration end; an idle
    // one must process it now or the ring stalls.
    if (driver_->node_idle(next)) handle_token(next);
  });
}

void DetectionProtocol::halt() {
  halting_ = true;
  driver_->broadcast_halt();
}

OracleSnapshot oracle_probe(const CoreFleet& fleet, bool lb_in_flight,
                            double tolerance) {
  OracleSnapshot snap;
  if (lb_in_flight) return snap;
  double max_residual = 0.0;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    const ProcessorCore& core = fleet.core(p);
    if (core.iteration() == 0 || core.residual_stale()) return snap;
    if (!(core.last_residual() <= tolerance)) return snap;
    if (core.has_pending_migrations()) return snap;
    max_residual = std::max(max_residual, core.last_residual());
  }
  double max_gap = 0.0;
  for (std::size_t p = 0; p + 1 < fleet.size(); ++p) {
    const double gap =
        fleet.core(p).block().interface_gap_with_right(
            fleet.core(p + 1).block());
    if (gap > tolerance) return snap;
    max_gap = std::max(max_gap, gap);
  }
  snap.converged = true;
  snap.max_gap = max_gap;
  snap.max_residual = max_residual;
  return snap;
}

OracleSnapshot measured_audit(const CoreFleet& fleet) {
  OracleSnapshot snap;
  snap.converged = true;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    const ProcessorCore& core = fleet.core(p);
    if (!std::isinf(core.last_residual()))
      snap.max_residual = std::max(snap.max_residual, core.last_residual());
    if (p + 1 < fleet.size()) {
      const ode::WaveformBlock& left = core.block();
      const ode::WaveformBlock& right = fleet.core(p + 1).block();
      if (left.first() + left.count() == right.first())
        snap.max_gap =
            std::max(snap.max_gap, left.interface_gap_with_right(right));
    }
  }
  return snap;
}

}  // namespace aiac::algo
