#include "algo/detection.hpp"

#include <algorithm>
#include <cmath>

namespace aiac::algo {

DetectionProtocol::DetectionProtocol(DetectionMode mode,
                                     std::size_t processors,
                                     Transport& transport,
                                     DetectionDriver& driver)
    : distributed_(transport.delivers_control_frames()),
      mode_(mode),
      processors_(processors),
      transport_(&transport),
      driver_(&driver),
      reported_(processors, false),
      coordinator_view_(processors, false) {}

/// Every protocol message leaves through here: the in-process drivers get
/// the frame wrapped in a post_control closure (delivered with the
/// driver's latency and accounting, exactly the old behavior), a
/// frame-delivering transport gets the plain frame to put on the wire.
void DetectionProtocol::send(std::size_t src, std::size_t dst,
                             const ControlFrame& frame) {
  if (distributed_) {
    transport_->send_control_frame(src, dst, frame);
    return;
  }
  transport_->post_control(src, dst,
                           [this, dst, frame] { handle_control(dst, frame); });
}

void DetectionProtocol::on_iteration_end(std::size_t rank) {
  if (halting_) return;
  switch (mode_) {
    case DetectionMode::kOracle:
      break;  // the driver probes globally itself
    case DetectionMode::kCoordinator:
      coordinator_report(rank);
      break;
    case DetectionMode::kTokenRing:
      if (token_holder_ == rank && !token_in_flight_) handle_token(rank);
      break;
  }
}

void DetectionProtocol::handle_control(std::size_t at,
                                       const ControlFrame& frame) {
  switch (frame.kind) {
    case ControlFrame::Kind::kReport:
      if (halting_) return;
      coordinator_view_[frame.sender] = frame.flag;
      if (!frame.flag) {
        // A node left convergence: abort any in-flight verification.
        verifying_ = false;
        verify_rearm_ = false;
        ++verify_epoch_;
        return;
      }
      maybe_begin_verification();
      return;
    case ControlFrame::Kind::kHeartbeat:
      maybe_begin_verification();
      return;
    case ControlFrame::Kind::kVerifyRequest: {
      if (halting_) return;
      // A stale request (the round it belongs to was aborted) is dropped
      // early where the current epoch is known: always in the shared
      // instance, only at rank 0 in the distributed deployment — a remote
      // rank cannot see the coordinator's epoch, so it acks anyway and
      // rank 0 discards the stale ack on arrival.
      if ((!distributed_ || at == 0) && frame.epoch != verify_epoch_) return;
      const bool ok = driver_->confirm_converged(at);
      ControlFrame ack;
      ack.kind = ControlFrame::Kind::kVerifyAck;
      ack.sender = at;
      ack.epoch = frame.epoch;
      ack.flag = ok;
      send(at, 0, ack);
      return;
    }
    case ControlFrame::Kind::kVerifyAck:
      if (halting_ || frame.epoch != verify_epoch_) return;
      if (!frame.flag) {
        verifying_ = false;
        ++verify_epoch_;
        if (verify_rearm_) maybe_begin_verification();
        return;
      }
      if (++verify_acks_ == processors_) halt();
      return;
    case ControlFrame::Kind::kToken:
      token_in_flight_ = false;
      token_holder_ = at;
      token_count_ = frame.count;
      if (halting_) return;
      // A busy node folds the token in at its next iteration end; an idle
      // one must process it now or the ring stalls.
      if (driver_->node_idle(at)) handle_token(at);
      return;
    case ControlFrame::Kind::kHalt:
      // Only a frame-delivering driver ships these (its broadcast_halt);
      // the receiving worker polls halting() and winds down.
      halting_ = true;
      return;
  }
}

void DetectionProtocol::coordinator_report(std::size_t rank) {
  const bool now_converged = driver_->locally_converged(rank);
  if (now_converged == reported_[rank]) {
    // Heartbeat: a still-converged node pings the coordinator at every
    // iteration end. It re-arms verification after an aborted round —
    // without it, a round aborted by a node that was mid-iteration would
    // never retry once that node settles without flipping its report.
    if (now_converged) {
      ControlFrame ping;
      ping.kind = ControlFrame::Kind::kHeartbeat;
      ping.sender = rank;
      send(rank, 0, ping);
    }
    return;
  }
  reported_[rank] = now_converged;
  ControlFrame report;
  report.kind = ControlFrame::Kind::kReport;
  report.sender = rank;
  report.flag = now_converged;
  send(rank, 0, report);
}

void DetectionProtocol::maybe_begin_verification() {
  if (halting_) return;
  if (verifying_) {
    verify_rearm_ = true;
    return;
  }
  if (!std::all_of(coordinator_view_.begin(), coordinator_view_.end(),
                   [](bool b) { return b; }))
    return;
  verifying_ = true;
  verify_rearm_ = false;
  verify_acks_ = 0;
  const std::size_t epoch = ++verify_epoch_;
  for (std::size_t r = 0; r < processors_; ++r) {
    // Request evaluated at the destination when the control message
    // lands; the ack carries the verdict back to rank 0.
    ControlFrame request;
    request.kind = ControlFrame::Kind::kVerifyRequest;
    request.sender = 0;
    request.epoch = epoch;
    send(0, r, request);
  }
}

void DetectionProtocol::handle_token(std::size_t rank) {
  if (halting_) return;
  const bool converged = driver_->locally_converged(rank);
  token_count_ = converged ? token_count_ + 1 : 0;
  if (token_count_ >= processors_) {
    halt();
    return;
  }
  const std::size_t next = (rank + 1) % processors_;
  // The sender stops acting as holder the moment the token leaves; the
  // shared instance clears in_flight/holder when the frame lands, a
  // distributed receiver's own instance does so in its handler.
  token_in_flight_ = true;
  ControlFrame token;
  token.kind = ControlFrame::Kind::kToken;
  token.sender = rank;
  token.count = token_count_;
  send(rank, next, token);
}

void DetectionProtocol::halt() {
  halting_ = true;
  driver_->broadcast_halt();
}

OracleSnapshot oracle_probe(const CoreFleet& fleet, bool lb_in_flight,
                            double tolerance) {
  OracleSnapshot snap;
  if (lb_in_flight) return snap;
  double max_residual = 0.0;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    const ProcessorCore& core = fleet.core(p);
    if (core.iteration() == 0 || core.residual_stale()) return snap;
    if (!(core.last_residual() <= tolerance)) return snap;
    if (core.has_pending_migrations()) return snap;
    max_residual = std::max(max_residual, core.last_residual());
  }
  double max_gap = 0.0;
  for (std::size_t p = 0; p + 1 < fleet.size(); ++p) {
    const double gap =
        fleet.core(p).block().interface_gap_with_right(
            fleet.core(p + 1).block());
    if (gap > tolerance) return snap;
    max_gap = std::max(max_gap, gap);
  }
  snap.converged = true;
  snap.max_gap = max_gap;
  snap.max_residual = max_residual;
  return snap;
}

OracleSnapshot measured_audit(const CoreFleet& fleet) {
  OracleSnapshot snap;
  snap.converged = true;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    const ProcessorCore& core = fleet.core(p);
    if (!std::isinf(core.last_residual()))
      snap.max_residual = std::max(snap.max_residual, core.last_residual());
    if (p + 1 < fleet.size()) {
      const ode::WaveformBlock& left = core.block();
      const ode::WaveformBlock& right = fleet.core(p + 1).block();
      if (left.first() + left.count() == right.first())
        snap.max_gap =
            std::max(snap.max_gap, left.interface_gap_with_right(right));
    }
  }
  return snap;
}

}  // namespace aiac::algo
