// Convergence detection, implemented once for both drivers.
//
// Three modes (see types.hpp): the oracle is a driver-side global probe
// (`oracle_probe` below — the driver guarantees a quiescent view, by
// construction in the single-threaded simulator, by holding every block
// lock in the threaded engine); coordinator and token-ring are genuine
// message protocols driven through `DetectionProtocol`, whose control
// messages travel over Transport::post_control with the driver's latency
// and accounting.
//
// DetectionProtocol is not thread-safe: the threaded driver serializes all
// calls (on_iteration_end and the delivered closures) under one detection
// mutex; the simulated driver is single-threaded by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "algo/processor_core.hpp"
#include "algo/runtime_ifaces.hpp"
#include "algo/types.hpp"

namespace aiac::algo {

/// What the protocol needs from its driver beyond message transport.
class DetectionDriver {
 public:
  virtual ~DetectionDriver() = default;

  /// Persistence-streak local convergence of `rank`, read from whatever
  /// the driver can access safely in the calling context (the threaded
  /// driver reads an atomic mirror, not the core itself).
  virtual bool locally_converged(std::size_t rank) const = 0;

  /// True when `rank` is not mid-iteration, so an arriving token must be
  /// processed on delivery or the ring stalls. The threaded driver always
  /// returns false: every node folds the token in at its own next
  /// iteration end (the control push wakes a dormant node, which then
  /// runs one more iteration).
  virtual bool node_idle(std::size_t rank) const = 0;

  /// Evaluated at `rank` when a coordinator verification request is
  /// delivered (see coordinator verification below): may this node confirm
  /// its convergence report right now? The default repeats
  /// locally_converged; drivers strengthen it with whatever local state
  /// the delivery context can read safely — the simulated driver also
  /// vetoes when a delivered-but-unfolded boundary update would move the
  /// ghost rows by more than the tolerance, so the in-flight data that
  /// undermined the sender's report blocks the halt once it lands. Only
  /// local state may be consulted: the request is a control message, not
  /// a global snapshot.
  virtual bool confirm_converged(std::size_t rank) const {
    return locally_converged(rank);
  }

  /// Distributes the halt decision to every processor (with control
  /// latency and accounting) and ends the run once all are down.
  virtual void broadcast_halt() = 0;
};

class DetectionProtocol {
 public:
  DetectionProtocol(DetectionMode mode, std::size_t processors,
                    Transport& transport, DetectionDriver& driver);

  /// Hook the driver calls after each processor's finish_iteration.
  /// kOracle: no-op (the driver probes globally itself). kCoordinator:
  /// report local-convergence flips to rank 0. kTokenRing: fold the token
  /// in if this node holds it.
  void on_iteration_end(std::size_t rank);

  /// Processes a control frame in rank `at`'s execution context. Every
  /// control message of the protocol is a plain-data ControlFrame; for the
  /// in-process drivers this is invoked by the closure the frame traveled
  /// in (Transport::post_control), while a frame-delivering transport
  /// (Transport::delivers_control_frames) hands decoded wire frames here
  /// directly — one protocol instance per process, `at` always the local
  /// rank.
  void handle_control(std::size_t at, const ControlFrame& frame);

  /// The halt decision has been taken (broadcast may still be in flight).
  bool halting() const noexcept { return halting_; }

 private:
  void send(std::size_t src, std::size_t dst, const ControlFrame& frame);
  void coordinator_report(std::size_t rank);
  void maybe_begin_verification();
  void handle_token(std::size_t rank);
  void halt();

  /// One instance per process, frames over a real wire (see
  /// handle_control). Coordinator bookkeeping then lives only in rank 0's
  /// instance and sender state only in the sender's; the shared-instance
  /// drivers see bit-identical behavior through the closure path.
  bool distributed_ = false;

  DetectionMode mode_;
  std::size_t processors_;
  Transport* transport_;
  DetectionDriver* driver_;
  bool halting_ = false;

  // Coordinator state: what each node last reported (sender side) and
  // what rank 0 has received so far.
  std::vector<bool> reported_;
  std::vector<bool> coordinator_view_;

  // Coordinator verification round (rank-0 state). An all-true view does
  // not halt directly: data sent before a node's last report can still be
  // in flight, about to disturb a receiver whose report the view trusts.
  // The coordinator instead asks every node to confirm
  // (driver_->confirm_converged at request delivery); one false ack
  // aborts the round. `verify_epoch_` invalidates closures of aborted
  // rounds; `verify_rearm_` records a converged-node heartbeat that
  // arrived mid-round, so an aborted round retries once the aborting
  // ack has been consumed (never a same-instant retry loop).
  bool verifying_ = false;
  bool verify_rearm_ = false;
  std::size_t verify_epoch_ = 0;
  std::size_t verify_acks_ = 0;

  // Token-ring state.
  std::size_t token_holder_ = 0;
  std::size_t token_count_ = 0;  // consecutively-converged nodes seen
  bool token_in_flight_ = false;
};

/// The oracle's global convergence probe over a quiescent fleet view:
/// every core has completed an iteration, holds a fresh (non-stale)
/// residual within tolerance and no queued migration, no load balancing is
/// in flight (`lb_in_flight`, driver-owned link state), and every shared
/// interface is consistent across neighbors — local residuals alone are
/// not sufficient for AIAC, where a node whose ghost data stopped arriving
/// reports a zero residual over stale values.
struct OracleSnapshot {
  bool converged = false;
  /// Audit trail for the no-early-detection invariant: the values the
  /// probe actually verified at the halt instant (valid when converged).
  double max_gap = 0.0;
  double max_residual = 0.0;
};

OracleSnapshot oracle_probe(const CoreFleet& fleet, bool lb_in_flight,
                            double tolerance);

/// The coordinator/token-ring halt audit: those protocols guaranteed
/// persistent local convergence, not interface consistency, so this
/// records whatever actually held at the halt instant (`converged` is
/// always true). Interfaces disturbed by an in-flight migration are not
/// measurable and are skipped.
OracleSnapshot measured_audit(const CoreFleet& fleet);

}  // namespace aiac::algo
