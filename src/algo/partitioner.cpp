#include "algo/partitioner.hpp"

#include <stdexcept>
#include <string>

#include "lb/iterative_schemes.hpp"
#include "ode/waveform.hpp"

namespace aiac::algo {

std::vector<std::size_t> build_partition(const PartitionSpec& spec) {
  if (spec.processors == 0)
    throw std::invalid_argument("build_partition: zero processors");
  if (!spec.speeds.empty() && spec.speeds.size() != spec.processors)
    throw std::invalid_argument(
        "build_partition: speeds size (" + std::to_string(spec.speeds.size()) +
        ") does not match processor count (" +
        std::to_string(spec.processors) + ")");
  // Validate speeds in every mode, not just kSpeedWeighted: a zero or
  // negative speed is a broken config either way (the even mode merely
  // ignores it today, but the model checker and callers treat speeds as a
  // description of the deployment and must be able to rely on it).
  for (double s : spec.speeds)
    if (!(s > 0.0))
      throw std::invalid_argument(
          "build_partition: processor speeds must be strictly positive");

  std::vector<std::size_t> starts;
  if (spec.mode == InitialPartition::kSpeedWeighted) {
    std::vector<double> speeds = spec.speeds;
    if (speeds.empty()) speeds.assign(spec.processors, 1.0);
    starts = lb::speed_weighted_partition(spec.dimension, speeds,
                                          spec.min_per_part);
  } else {
    starts = ode::even_partition(spec.dimension, spec.processors);
  }

  for (std::size_t p = 0; p < spec.processors; ++p) {
    if (starts[p + 1] - starts[p] < spec.min_per_part)
      throw std::invalid_argument(
          "build_partition: partition leaves a processor with fewer than "
          "stencil+1 components; use fewer processors or a larger system");
  }
  return starts;
}

}  // namespace aiac::algo
