// Shared initial-partition construction: both drivers must split the
// component chain identically or they diverge before the first iteration
// (the threaded backend used to hard-code the even split and silently
// ignore EngineConfig::initial_partition — this is the single
// implementation that replaced that).
#pragma once

#include <cstddef>
#include <vector>

#include "algo/types.hpp"

namespace aiac::algo {

struct PartitionSpec {
  InitialPartition mode = InitialPartition::kEven;
  /// Total number of components to split.
  std::size_t dimension = 0;
  std::size_t processors = 0;
  /// Relative processor speeds for kSpeedWeighted. Empty means uniform —
  /// on a homogeneous substrate (the threaded backend's identical cores)
  /// the speed-weighted split then degenerates to the even one, which is
  /// the honest reading of "speed-weighted" there. When non-empty the
  /// size must equal `processors`.
  std::vector<double> speeds;
  /// Structural floor: every processor must receive at least this many
  /// components (stencil + 1 in the engines).
  std::size_t min_per_part = 1;
};

/// Contiguous part boundaries (size processors + 1, starts[0] == 0,
/// starts[processors] == dimension). Throws std::invalid_argument when the
/// spec is inconsistent or any part would fall below `min_per_part`.
std::vector<std::size_t> build_partition(const PartitionSpec& spec);

}  // namespace aiac::algo
