// Backend-agnostic algorithm vocabulary shared by the algorithm layer
// (algo/) and both execution drivers (core/sim_engine, core/thread_engine).
// The enums used to live in core/config.hpp; they moved here so the
// algorithm code does not depend on the driver layer. core/config.hpp
// re-exports them under aiac::core for existing call sites.
#pragma once

#include <string>

namespace aiac::algo {

/// The paper's three-way categorization of parallel iterative algorithms
/// (§1.2).
enum class Scheme {
  kSISC,  // Synchronous Iterations, Synchronous Communications
  kSIAC,  // Synchronous Iterations, Asynchronous Communications
  kAIAC,  // Asynchronous Iterations, Asynchronous Communications
};

std::string to_string(Scheme scheme);

/// How global convergence is decided.
enum class DetectionMode {
  /// The driver inspects the true global state (all local residuals under
  /// tolerance, no balancing in flight, consistent interfaces).
  /// Deterministic, no protocol overhead; the measurement used by the
  /// paper-reproduction benches. The threaded driver realizes it as a
  /// rank-0 leader poll over the same probe.
  kOracle,
  /// A distributed protocol: nodes report persistent local convergence to
  /// a coordinator which broadcasts the halt (the paper defers detection
  /// design to the authors' companion work; this is the classic
  /// coordinator scheme with a persistence guard).
  kCoordinator,
  /// Fully decentralized: a token circulates over the ring 0..P-1
  /// counting consecutively-converged nodes; a full lap of converged
  /// nodes triggers the halt broadcast. No node plays a special role
  /// beyond initially holding the token.
  kTokenRing,
};

std::string to_string(DetectionMode mode);

/// How components are initially distributed (paper: homogeneous
/// distribution; the authors' earlier work [2] uses static speed-weighted
/// balancing, provided here as an option and baseline).
enum class InitialPartition {
  kEven,
  kSpeedWeighted,
};

std::string to_string(InitialPartition partition);

/// Which neighbor of a chain processor a message, migration or link
/// concerns, seen from the processor itself.
enum class Side { kLeft, kRight };

constexpr Side opposite(Side side) noexcept {
  return side == Side::kLeft ? Side::kRight : Side::kLeft;
}

std::string to_string(Side side);

}  // namespace aiac::algo
