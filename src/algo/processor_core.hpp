// The backend-agnostic per-processor state machine of the paper's
// Algorithms 1-7: one object holds a node's block of components plus every
// piece of algorithm state that used to be duplicated (and had drifted)
// between the virtual-time and threaded engines — boundary inboxes with
// the receive filter, migration queues and the famine guard, the residual
// load estimate, the OkToTryLB countdown and the lightest-loaded-neighbor
// migration decision, and the local-convergence persistence streak.
//
// A driver runs the lifecycle
//
//   ingest_boundary / enqueue_migration   (as messages arrive)
//   begin_iteration                       (absorb migrations, apply ghosts)
//   run_iteration                         (the numerics)
//   make_boundary / emit_boundaries       (outgoing ghost data)
//   finish_iteration                      (residual, streak, bookkeeping)
//   lb_trigger_due / plan_migration / extract_migration
//
// and owns everything else: scheduling, locking, message delivery and the
// mapping from work units to seconds (see runtime_ifaces.hpp). The core is
// not thread-safe; the threaded driver serializes access per processor
// with its block mutex.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <memory>
#include <optional>

#include "algo/partitioner.hpp"
#include "algo/runtime_ifaces.hpp"
#include "algo/types.hpp"
#include "lb/balancer.hpp"
#include "lb/estimators.hpp"
#include "ode/boundary_delta.hpp"
#include "ode/ode_system.hpp"
#include "ode/waveform_block.hpp"

namespace aiac::algo {

/// Algorithm constants shared by every core of a run.
struct CoreParams {
  double tolerance = 1e-8;
  /// Consecutive undisturbed under-tolerance iterations before a node
  /// calls itself locally converged (coordinator / token-ring guard).
  std::size_t persistence = 3;
  /// Famine guard: a migration never leaves the sender with fewer owned
  /// components than this (max of the balancer's min_components and
  /// stencil + 1).
  std::size_t min_keep = 2;
  /// OkToTryLB: iterations between load-balancing attempts.
  std::size_t lb_trigger_period = 20;
};

class ProcessorCore {
 public:
  ProcessorCore(std::size_t rank, std::size_t processors,
                const ode::OdeSystem& system,
                const ode::WaveformBlockConfig& block_config,
                const CoreParams& params, const lb::LoadEstimator& estimator,
                const lb::NeighborBalancer& balancer);

  ProcessorCore(const ProcessorCore&) = delete;
  ProcessorCore& operator=(const ProcessorCore&) = delete;

  // ---- Topology -----------------------------------------------------
  std::size_t rank() const noexcept { return rank_; }
  bool has_neighbor(Side side) const noexcept {
    return side == Side::kLeft ? rank_ > 0 : rank_ + 1 < processors_;
  }

  // ---- Message ingest (driver-side delivery) ------------------------

  /// Latest-value boundary delivery: overwrites the inbox for that side
  /// (ghost data is a value, not a stream) and records the piggybacked
  /// neighbor load and iteration stamp immediately — synchronous schemes
  /// gate on data_iteration before the data itself is applied.
  void ingest_boundary(Side from, const ode::BoundaryMessage& msg);

  /// Delta boundary delivery (DESIGN.md §14): patches the changed rows
  /// into the side's persistent inbox, which still holds the link's last
  /// full message (possibly already patched by earlier deltas of the same
  /// epoch), then performs ingest_boundary's bookkeeping. Returns false —
  /// inbox untouched — when no full message was ever ingested on that
  /// side or the delta's epoch/shape disagrees with it; the sender's
  /// forced full refresh resynchronizes such a link. The patched message
  /// flows through the same receive filter and stale-residual rule as a
  /// full one, so thinning never lets locally_converged() confirm on
  /// unseen data.
  bool ingest_boundary_delta(Side from,
                             const ode::BoundaryDeltaMessage& delta);

  /// Zero-copy ingest for drivers that parse wire payloads themselves:
  /// decode directly into inbox_storage(side) — its rows capacity
  /// persists across messages — then call commit_inbox(side) to apply
  /// ingest_boundary's bookkeeping to the decoded contents. The reference
  /// is invalidated by nothing short of core destruction.
  ode::BoundaryMessage& inbox_storage(Side side) noexcept {
    return side == Side::kLeft ? inbox_left_ : inbox_right_;
  }
  void commit_inbox(Side from);

  /// Migration payloads are a FIFO stream per side; they are absorbed in
  /// arrival order at the next begin_iteration.
  void enqueue_migration(Side from, ode::MigrationPayload payload);

  // ---- Iteration lifecycle ------------------------------------------

  struct BeginInfo {
    /// Which sides delivered a migration this iteration — the driver
    /// clears its per-link in-flight flag on these.
    bool absorbed_from_left = false;
    bool absorbed_from_right = false;
    /// A migration was absorbed or a boundary update passed the receive
    /// filter: this iterate runs on changed external data.
    bool external_input = false;
  };

  /// Absorbs queued migrations (marking the residual stale until the next
  /// finish_iteration covers the new rows), then applies the boundary
  /// inboxes through the receive filter.
  BeginInfo begin_iteration();

  /// The numerics: one outer waveform iteration over the local block.
  ode::WaveformBlock::IterationStats run_iteration();

  /// Completes the iteration at the driver's chosen instant: `clock.now()
  /// - start_time` becomes the iteration duration (virtual for the
  /// simulated driver, wall for the threaded one). Updates the residual,
  /// the under-tolerance persistence streak and the famine-guard
  /// instrumentation.
  void finish_iteration(const ode::WaveformBlock::IterationStats& stats,
                        double start_time, ClockModel& clock);

  // ---- Outgoing boundary data ---------------------------------------

  /// Boundary rows for the `toward`-side neighbor, stamped with this
  /// core's current iteration count, component count, residual and load
  /// estimate. The virtual-time driver calls this right after
  /// run_iteration (so the stamp carries the previous iteration's
  /// residual, the paper's "residual of previous iteration"); the
  /// threaded driver calls it after finish_iteration.
  ode::BoundaryMessage make_boundary(Side toward) const;

  /// Fill-into variant of make_boundary: overwrites `msg` in place,
  /// reusing msg.rows' capacity. With pool-recycled messages the threaded
  /// engine's per-iteration boundary send path is allocation-free.
  void fill_boundary(Side toward, ode::BoundaryMessage& msg) const;

  /// make_boundary + Transport::send_boundary for each existing neighbor.
  void emit_boundaries(Transport& transport);

  // ---- Load balancing (paper §5.2, Algorithms 4-6) ------------------

  /// The OkToTryLB countdown: false (and one tick consumed) while it is
  /// running, true once it has elapsed. It only rearms when a migration
  /// is actually extracted, so an elapsed trigger keeps retrying.
  bool lb_trigger_due();

  /// Chaos hook: pushes the elapsed trigger back by `iterations`.
  void defer_lb(std::size_t iterations);

  /// The migration decision from this core's view: own load estimate,
  /// latest piggybacked neighbor loads, and the driver-owned per-link
  /// busy flags.
  lb::BalanceDecision plan_migration(bool left_link_busy,
                                     bool right_link_busy) const;

  /// Clamps `amount` against the famine guard and extracts the payload;
  /// nullopt when the guard leaves nothing to send. On success rearms the
  /// trigger countdown and updates the migration counters and the
  /// min-components watermark (sampled at its tightest point, right after
  /// the extraction).
  std::optional<ode::MigrationPayload> extract_migration(Side toward,
                                                         std::size_t amount);

  /// Fill-into variant of extract_migration: on success overwrites
  /// `payload` (reusing payload.rows' capacity — pass pool-acquired rows)
  /// and returns true; false when the famine guard blocks the migration,
  /// leaving `payload` untouched.
  bool extract_migration_into(Side toward, std::size_t amount,
                              ode::MigrationPayload& payload);

  /// Absorbs everything still queued (result assembly after a stop, so
  /// the solution covers every component exactly once).
  void drain_pending_migrations();

  /// Current output of the load estimator on this core's state.
  double current_load() const;

  // ---- Observers ----------------------------------------------------

  std::size_t components() const noexcept { return block_.count(); }
  /// Completed (finished) iterations.
  std::size_t iteration() const noexcept { return iteration_; }
  double last_residual() const noexcept { return last_residual_; }
  double last_iteration_seconds() const noexcept { return last_seconds_; }
  /// Inputs were folded in (absorbed components or accepted ghost
  /// updates) that the last residual does not cover yet; clears when the
  /// covering iterate finishes.
  bool residual_stale() const noexcept { return residual_stale_; }
  std::size_t under_tol_streak() const noexcept { return under_tol_streak_; }
  /// The persistence streak is a convergence claim about the rows and
  /// ghosts the streak's residuals were measured on. While the residual
  /// is stale the claim does not transfer to the current state, so the
  /// core must not report converged: a coordinator verification landing
  /// between a migration's absorb and its covering iterate would
  /// otherwise halt the fleet on data nobody ever iterated.
  bool locally_converged() const noexcept {
    return under_tol_streak_ >= params_.persistence && !residual_stale_;
  }
  /// Nothing buffered: boundary inboxes empty and no queued migrations.
  bool inputs_quiescent() const noexcept {
    return !inbox_left_full_ && !inbox_right_full_ &&
           !has_pending_migrations();
  }
  bool has_pending_migrations() const noexcept {
    return !pending_from_left_.empty() || !pending_from_right_.empty();
  }
  /// Max-norm change the buffered (delivered, not yet absorbed) boundary
  /// inboxes would make to the block's ghost rows if folded in now; 0 when
  /// both inboxes are empty. Convergence detection uses this to tell
  /// harmless steady-state traffic from an unprocessed update that would
  /// break local convergence (see WaveformBlock::ghost_update_disturbance).
  double pending_input_disturbance() const;
  /// Components delivered but not yet absorbed (queued migrations). The
  /// model checker's conservation invariant counts these: every component
  /// is owned by a block, queued at a receiver, or in transit — never two
  /// of those at once.
  std::size_t pending_migration_components() const noexcept;
  /// Highest neighbor iteration whose data was delivered from `side`.
  std::size_t data_iteration(Side side) const noexcept {
    return side == Side::kLeft ? left_data_iteration_ : right_data_iteration_;
  }
  /// Famine-guard watermark: smallest owned count this core ever held.
  std::size_t min_components_seen() const noexcept { return min_seen_; }
  double total_work() const noexcept { return total_work_; }
  std::size_t migrations_out() const noexcept { return migrations_out_; }
  std::size_t components_out() const noexcept { return components_out_; }
  std::size_t lb_bytes_out() const noexcept { return lb_bytes_out_; }
  const ode::WaveformBlock& block() const noexcept { return block_; }

  /// Hands this core's block an intra-processor worker pool for its
  /// sharded iterate (nullptr detaches). Drivers own the pools — thread
  /// budgets depend on how many cores share the machine, which only the
  /// driver knows. The pool must outlive the core or be detached first.
  void set_worker_pool(runtime::WorkerPool* pool) noexcept {
    block_.set_worker_pool(pool);
  }

 private:
  std::size_t rank_;
  std::size_t processors_;
  CoreParams params_;
  const lb::LoadEstimator* estimator_;
  const lb::NeighborBalancer* balancer_;
  ode::WaveformBlock block_;

  std::size_t iteration_ = 0;
  /// Iterations whose numerics have run (>= iteration_; the virtual-time
  /// driver stamps outgoing data before the finish event).
  std::size_t computed_iterations_ = 0;
  double last_residual_ = std::numeric_limits<double>::infinity();
  double last_seconds_ = 0.0;
  double last_work_ = 0.0;
  double total_work_ = 0.0;
  std::size_t under_tol_streak_ = 0;
  bool residual_stale_ = false;
  std::size_t lb_countdown_ = 0;

  // Boundary inboxes: persistent storage plus a full/empty flag rather
  // than optionals, so ingest_boundary's copy-assignment reuses the rows
  // capacity of the previous message — overwriting an unread inbox (the
  // common case under asynchronous iteration) allocates nothing.
  ode::BoundaryMessage inbox_left_;
  ode::BoundaryMessage inbox_right_;
  bool inbox_left_full_ = false;
  bool inbox_right_full_ = false;
  // Delta-ingest base tracking: the sender-iteration stamp of the last
  // full message per side (the delta epoch), and whether one ever
  // arrived. The inbox storage itself is the receiver's baseline: rows a
  // delta does not carry keep their last full-frame value in place.
  std::size_t left_inbox_epoch_ = 0;
  std::size_t right_inbox_epoch_ = 0;
  bool left_has_base_ = false;
  bool right_has_base_ = false;
  std::deque<ode::MigrationPayload> pending_from_left_;
  std::deque<ode::MigrationPayload> pending_from_right_;
  std::optional<double> left_load_;
  std::optional<double> right_load_;
  std::size_t left_data_iteration_ = 0;
  std::size_t right_data_iteration_ = 0;

  std::size_t min_seen_ = 0;
  std::size_t migrations_out_ = 0;
  std::size_t components_out_ = 0;
  std::size_t lb_bytes_out_ = 0;
};

/// Everything needed to build one run's worth of cores; the engines fill
/// this from their EngineConfig (the driver layer owns that type).
struct FleetConfig {
  std::size_t processors = 0;
  InitialPartition partition = InitialPartition::kEven;
  /// Relative processor speeds for the speed-weighted partition; empty
  /// means uniform.
  std::vector<double> speeds;

  // WaveformBlock template (first/count come from the partition).
  std::size_t num_steps = 100;
  double t_end = 10.0;
  ode::LocalSolveMode solve_mode = ode::LocalSolveMode::kBlockNewton;
  ode::NewtonOptions newton = {};
  double receive_filter = 0.0;
  /// Chunk count for every core's sharded iterate (see
  /// WaveformBlockConfig::intra_chunks — numerics only; worker pools are
  /// attached separately by the driver via ProcessorCore::
  /// set_worker_pool, since thread budgets are a driver concern).
  std::size_t intra_chunks = 1;

  double tolerance = 1e-8;
  std::size_t persistence = 3;
  lb::EstimatorKind estimator = lb::EstimatorKind::kResidual;
  lb::BalancerConfig balancer = {};
};

/// Owns the estimator, the balancer and one ProcessorCore per rank, built
/// over the shared partitioner. Both engines construct exactly this, so
/// they cannot disagree on the initial split or the famine floor.
class CoreFleet {
 public:
  CoreFleet(const ode::OdeSystem& system, const FleetConfig& config);

  CoreFleet(const CoreFleet&) = delete;
  CoreFleet& operator=(const CoreFleet&) = delete;

  std::size_t size() const noexcept { return cores_.size(); }
  ProcessorCore& core(std::size_t rank) { return cores_[rank]; }
  const ProcessorCore& core(std::size_t rank) const { return cores_[rank]; }
  std::size_t min_keep() const noexcept { return min_keep_; }

 private:
  std::unique_ptr<lb::LoadEstimator> estimator_;
  std::unique_ptr<lb::NeighborBalancer> balancer_;
  std::size_t min_keep_ = 0;
  std::deque<ProcessorCore> cores_;  // address-stable, cores are pinned
};

/// Test-only algorithm mutations for the model checker's self-tests
/// (tests/test_model_check.cpp): deliberately breaking a guard and
/// asserting the checker reports the violation proves the detector has
/// teeth. Process-global, not thread-safe — flip only in single-threaded
/// test code, never in production paths.
namespace mutation {

/// While true, ProcessorCore::extract_migration ignores the famine guard
/// (params_.min_keep) and clamps only to the structural floor of one
/// owned component, so a migration can starve the sender.
void set_disable_famine_guard(bool disabled) noexcept;
bool famine_guard_disabled() noexcept;

/// RAII guard so a throwing test cannot leak the mutation into later
/// tests.
class ScopedFamineGuardDisabled {
 public:
  ScopedFamineGuardDisabled() { set_disable_famine_guard(true); }
  ~ScopedFamineGuardDisabled() { set_disable_famine_guard(false); }
  ScopedFamineGuardDisabled(const ScopedFamineGuardDisabled&) = delete;
  ScopedFamineGuardDisabled& operator=(const ScopedFamineGuardDisabled&) =
      delete;
};

}  // namespace mutation

}  // namespace aiac::algo
