#include "algo/processor_core.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace aiac::algo {

ProcessorCore::ProcessorCore(std::size_t rank, std::size_t processors,
                             const ode::OdeSystem& system,
                             const ode::WaveformBlockConfig& block_config,
                             const CoreParams& params,
                             const lb::LoadEstimator& estimator,
                             const lb::NeighborBalancer& balancer)
    : rank_(rank),
      processors_(processors),
      params_(params),
      estimator_(&estimator),
      balancer_(&balancer),
      block_(system, block_config),
      lb_countdown_(params.lb_trigger_period),
      min_seen_(block_config.count) {}

void ProcessorCore::ingest_boundary(Side from,
                                    const ode::BoundaryMessage& msg) {
  // Copy-assignment into persistent storage: when the inbox already holds
  // a (possibly unread) message of the same shape, the rows vector's
  // capacity is reused and the overwrite allocates nothing.
  inbox_storage(from) = msg;
  commit_inbox(from);
}

void ProcessorCore::commit_inbox(Side from) {
  if (from == Side::kLeft) {
    inbox_left_full_ = true;
    left_data_iteration_ =
        std::max(left_data_iteration_, inbox_left_.sender_iteration);
    left_load_ = inbox_left_.sender_load;
    left_inbox_epoch_ = inbox_left_.sender_iteration;
    left_has_base_ = true;
  } else {
    inbox_right_full_ = true;
    right_data_iteration_ =
        std::max(right_data_iteration_, inbox_right_.sender_iteration);
    right_load_ = inbox_right_.sender_load;
    right_inbox_epoch_ = inbox_right_.sender_iteration;
    right_has_base_ = true;
  }
}

bool ProcessorCore::ingest_boundary_delta(
    Side from, const ode::BoundaryDeltaMessage& delta) {
  const bool left = from == Side::kLeft;
  if (!(left ? left_has_base_ : right_has_base_)) return false;
  ode::BoundaryMessage& inbox = left ? inbox_left_ : inbox_right_;
  if (!ode::apply_boundary_delta(
          delta, left ? left_inbox_epoch_ : right_inbox_epoch_, inbox))
    return false;
  // Bookkeeping as for a full message, except the epoch: that stays at
  // the baseline's stamp — deltas patch the base, they do not become one.
  if (left) {
    inbox_left_full_ = true;
    left_data_iteration_ =
        std::max(left_data_iteration_, delta.sender_iteration);
    left_load_ = delta.sender_load;
  } else {
    inbox_right_full_ = true;
    right_data_iteration_ =
        std::max(right_data_iteration_, delta.sender_iteration);
    right_load_ = delta.sender_load;
  }
  return true;
}

double ProcessorCore::pending_input_disturbance() const {
  double disturbance = 0.0;
  if (inbox_left_full_)
    disturbance = std::max(
        disturbance, block_.ghost_update_disturbance(inbox_left_,
                                                     /*left=*/true));
  if (inbox_right_full_)
    disturbance = std::max(
        disturbance, block_.ghost_update_disturbance(inbox_right_,
                                                     /*left=*/false));
  return disturbance;
}

void ProcessorCore::enqueue_migration(Side from,
                                      ode::MigrationPayload payload) {
  (from == Side::kLeft ? pending_from_left_ : pending_from_right_)
      .push_back(std::move(payload));
}

ProcessorCore::BeginInfo ProcessorCore::begin_iteration() {
  BeginInfo info;
  while (!pending_from_left_.empty()) {
    block_.absorb_from_left(pending_from_left_.front());
    pending_from_left_.pop_front();
    info.absorbed_from_left = true;
  }
  while (!pending_from_right_.empty()) {
    block_.absorb_from_right(pending_from_right_.front());
    pending_from_right_.pop_front();
    info.absorbed_from_right = true;
  }
  if (inbox_left_full_) {
    // Position check (paper Algorithm 7): silently dropped when the
    // arrays are mid-resize and the positions no longer line up; the
    // receive filter drops insignificant updates the same way. The
    // storage (and its capacity) stays for the next ingest.
    info.external_input |= block_.accept_left_ghosts(inbox_left_);
    inbox_left_full_ = false;
  }
  if (inbox_right_full_) {
    info.external_input |= block_.accept_right_ghosts(inbox_right_);
    inbox_right_full_ = false;
  }
  info.external_input |= info.absorbed_from_left || info.absorbed_from_right;
  // Any folded-in input invalidates the last residual until the iterate
  // that is about to run covers it. Note this does NOT touch the streak:
  // the report a node sends at iteration end is computed after the
  // covering iterate, so steady-state traffic still cannot make reports
  // flip forever — only a mid-iterate convergence *confirmation* is held
  // back, which is exactly the window where it would be unsound.
  residual_stale_ |= info.external_input;
  return info;
}

ode::WaveformBlock::IterationStats ProcessorCore::run_iteration() {
  ++computed_iterations_;
  return block_.iterate();
}

void ProcessorCore::finish_iteration(
    const ode::WaveformBlock::IterationStats& stats, double start_time,
    ClockModel& clock) {
  iteration_ += 1;
  residual_stale_ = false;  // this iterate covers any absorbed rows
  last_residual_ = stats.residual;
  last_seconds_ = clock.now() - start_time;
  last_work_ = stats.work;
  total_work_ += stats.work;
  min_seen_ = std::min(min_seen_, block_.count());
  // The streak deliberately ignores external input: an applied boundary
  // update that leaves the residual under tolerance must not reset it, or
  // the coordinator/token reports of neighboring near-converged nodes
  // flip forever and detection livelocks. Detection safety does not rest
  // on the streak — the oracle probe re-verifies residuals and interface
  // gaps over a quiescent view before any halt.
  if (stats.residual <= params_.tolerance)
    under_tol_streak_ += 1;
  else
    under_tol_streak_ = 0;
}

void ProcessorCore::fill_boundary(Side toward,
                                  ode::BoundaryMessage& msg) const {
  if (toward == Side::kLeft)
    block_.boundary_for_left(msg);
  else
    block_.boundary_for_right(msg);
  msg.sender_iteration = computed_iterations_;
  msg.sender_components = block_.count();
  msg.sender_residual =
      std::isinf(last_residual_) ? 1.0 : last_residual_;
  msg.sender_load = current_load();
}

ode::BoundaryMessage ProcessorCore::make_boundary(Side toward) const {
  ode::BoundaryMessage msg;
  fill_boundary(toward, msg);
  return msg;
}

void ProcessorCore::emit_boundaries(Transport& transport) {
  if (has_neighbor(Side::kLeft))
    transport.send_boundary(rank_, Side::kLeft, make_boundary(Side::kLeft));
  if (has_neighbor(Side::kRight))
    transport.send_boundary(rank_, Side::kRight, make_boundary(Side::kRight));
}

bool ProcessorCore::lb_trigger_due() {
  if (lb_countdown_ > 0) {
    --lb_countdown_;
    return false;
  }
  return true;
}

void ProcessorCore::defer_lb(std::size_t iterations) {
  lb_countdown_ = iterations;
}

lb::BalanceDecision ProcessorCore::plan_migration(bool left_link_busy,
                                                  bool right_link_busy) const {
  lb::BalanceView view;
  view.my_load = current_load();
  view.my_components = block_.count();
  if (has_neighbor(Side::kLeft)) {
    view.left_load = left_load_;
    view.left_link_busy = left_link_busy;
  }
  if (has_neighbor(Side::kRight)) {
    view.right_load = right_load_;
    view.right_link_busy = right_link_busy;
  }
  return balancer_->decide(view);
}

bool ProcessorCore::extract_migration_into(Side toward, std::size_t amount,
                                           ode::MigrationPayload& payload) {
  const std::size_t count = block_.count();
  // min_keep is the famine guard; the structural floor of one owned
  // component (WaveformBlock::extract_* requires k < count) is all that
  // remains when the test-only mutation disables the guard.
  const std::size_t keep =
      mutation::famine_guard_disabled() ? 1 : params_.min_keep;
  if (count <= keep) return false;
  amount = std::min(amount, count - keep);
  if (amount == 0) return false;
  if (toward == Side::kLeft)
    block_.extract_for_left(amount, payload);
  else
    block_.extract_for_right(amount, payload);
  // Sample the famine invariant at its tightest point: immediately after
  // the extraction, before the payload even leaves.
  min_seen_ = std::min(min_seen_, block_.count());
  lb_countdown_ = params_.lb_trigger_period;
  ++migrations_out_;
  components_out_ += payload.owned_count;
  lb_bytes_out_ += payload.byte_size();
  return true;
}

std::optional<ode::MigrationPayload> ProcessorCore::extract_migration(
    Side toward, std::size_t amount) {
  ode::MigrationPayload payload;
  if (!extract_migration_into(toward, amount, payload)) return std::nullopt;
  return payload;
}

void ProcessorCore::drain_pending_migrations() {
  while (!pending_from_left_.empty()) {
    block_.absorb_from_left(pending_from_left_.front());
    pending_from_left_.pop_front();
  }
  while (!pending_from_right_.empty()) {
    block_.absorb_from_right(pending_from_right_.front());
    pending_from_right_.pop_front();
  }
}

std::size_t ProcessorCore::pending_migration_components() const noexcept {
  std::size_t total = 0;
  for (const auto& payload : pending_from_left_) total += payload.owned_count;
  for (const auto& payload : pending_from_right_) total += payload.owned_count;
  return total;
}

double ProcessorCore::current_load() const {
  lb::NodeLoadInputs inputs;
  inputs.residual = std::isinf(last_residual_) ? 1.0 : last_residual_;
  inputs.last_iteration_seconds = last_seconds_;
  inputs.last_iteration_work = last_work_;
  inputs.components = block_.count();
  return estimator_->estimate(inputs);
}

CoreFleet::CoreFleet(const ode::OdeSystem& system, const FleetConfig& config) {
  estimator_ = lb::make_estimator(config.estimator);
  balancer_ = std::make_unique<lb::NeighborBalancer>(config.balancer);
  const std::size_t stencil = system.stencil_halfwidth();
  min_keep_ = std::max(config.balancer.min_components, stencil + 1);

  PartitionSpec spec;
  spec.mode = config.partition;
  spec.dimension = system.dimension();
  spec.processors = config.processors;
  spec.speeds = config.speeds;
  spec.min_per_part = stencil + 1;
  const auto starts = build_partition(spec);

  CoreParams params;
  params.tolerance = config.tolerance;
  params.persistence = config.persistence;
  params.min_keep = min_keep_;
  params.lb_trigger_period = config.balancer.trigger_period;

  for (std::size_t p = 0; p < config.processors; ++p) {
    ode::WaveformBlockConfig bc;
    bc.first = starts[p];
    bc.count = starts[p + 1] - starts[p];
    bc.num_steps = config.num_steps;
    bc.t_end = config.t_end;
    bc.mode = config.solve_mode;
    bc.newton = config.newton;
    bc.receive_filter = config.receive_filter;
    bc.intra_chunks = config.intra_chunks;
    cores_.emplace_back(p, config.processors, system, bc, params, *estimator_,
                        *balancer_);
  }
}

namespace mutation {

namespace {
bool g_disable_famine_guard = false;
}  // namespace

void set_disable_famine_guard(bool disabled) noexcept {
  g_disable_famine_guard = disabled;
}

bool famine_guard_disabled() noexcept { return g_disable_famine_guard; }

}  // namespace mutation

}  // namespace aiac::algo
