// The two narrow interfaces through which the backend-agnostic algorithm
// layer is driven (see DESIGN.md "The algo layer"):
//
//  * Transport — how bytes leave a processor. The virtual-time driver
//    schedules discrete-event deliveries with grid latencies; the threaded
//    driver pushes into SlotBox/Mailbox channels.
//  * ClockModel — how work units map to seconds. The virtual-time driver
//    predicts durations from the grid model; the threaded driver measures
//    wall time.
//
// Everything above these interfaces (ProcessorCore, DetectionProtocol,
// Partitioner) is identical algorithm code for both backends.
#pragma once

#include <cstddef>
#include <functional>

#include "algo/types.hpp"
#include "ode/waveform_block.hpp"

namespace aiac::algo {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends freshly stamped boundary (ghost) data from `src` toward its
  /// `toward`-side neighbor. The driver owns the departure discipline
  /// (early/late sends, link mutual exclusion, fault hooks).
  virtual void send_boundary(std::size_t src, Side toward,
                             ode::BoundaryMessage msg) = 0;

  /// Ships a load-balancing migration payload from `src` toward its
  /// `toward`-side neighbor. The per-link at-most-one-in-flight rule is
  /// enforced by the driver before the payload is extracted.
  virtual void send_migration(std::size_t src, Side toward,
                              ode::MigrationPayload payload) = 0;

  /// Posts a convergence-detection control message. `deliver` must run in
  /// the destination's execution context after the driver's control
  /// latency: at the scheduled virtual delivery time for the simulated
  /// driver, at the destination thread's next control drain for the
  /// threaded one. The driver accounts message counts/bytes.
  virtual void post_control(std::size_t src, std::size_t dst,
                            std::function<void()> deliver) = 0;
};

class ClockModel {
 public:
  virtual ~ClockModel() = default;

  /// Current time in seconds: virtual time for the discrete-event driver,
  /// wall seconds since run start for the threaded driver.
  virtual double now() const = 0;

  /// Seconds that `work` work-units starting at `start` occupy on
  /// processor `rank` while it holds `resident` components. Predictive
  /// models (the simulated grid) compute this; measuring models (wall
  /// clock) return a negative sentinel and the driver uses the measured
  /// elapsed time instead.
  virtual double work_to_seconds(std::size_t rank, double work, double start,
                                 double resident) = 0;
};

}  // namespace aiac::algo
