// The two narrow interfaces through which the backend-agnostic algorithm
// layer is driven (see DESIGN.md "The algo layer"):
//
//  * Transport — how bytes leave a processor. The virtual-time driver
//    schedules discrete-event deliveries with grid latencies; the threaded
//    driver pushes into SlotBox/Mailbox channels.
//  * ClockModel — how work units map to seconds. The virtual-time driver
//    predicts durations from the grid model; the threaded driver measures
//    wall time.
//
// Everything above these interfaces (ProcessorCore, DetectionProtocol,
// Partitioner) is identical algorithm code for both backends.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>

#include "algo/types.hpp"
#include "ode/waveform_block.hpp"

namespace aiac::algo {

/// One convergence-detection control message as plain data. The protocol
/// (algo/detection.hpp) used to exchange these as closures, which only
/// works while every rank lives in one address space; as a struct the same
/// protocol can run with one instance per OS process, the frames shipped
/// over a real wire (src/net/wire.hpp serializes exactly this).
struct ControlFrame {
  enum class Kind : unsigned char {
    kReport,         // sender's local-convergence flag flipped
    kHeartbeat,      // still-converged ping; re-arms aborted verifications
    kVerifyRequest,  // coordinator asks a node to confirm its report
    kVerifyAck,      // the node's verdict, echoing the round's epoch
    kToken,          // token-ring token carrying the converged-lap count
    kHalt,           // the halt decision reached this rank
  };
  Kind kind = Kind::kReport;
  std::size_t sender = 0;  // originating rank
  std::size_t epoch = 0;   // verification round (kVerifyRequest/kVerifyAck)
  std::size_t count = 0;   // converged-lap count (kToken)
  bool flag = false;       // converged? (kReport) / confirmed? (kVerifyAck)
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends freshly stamped boundary (ghost) data from `src` toward its
  /// `toward`-side neighbor. The driver owns the departure discipline
  /// (early/late sends, link mutual exclusion, fault hooks).
  virtual void send_boundary(std::size_t src, Side toward,
                             ode::BoundaryMessage msg) = 0;

  /// Ships a load-balancing migration payload from `src` toward its
  /// `toward`-side neighbor. The per-link at-most-one-in-flight rule is
  /// enforced by the driver before the payload is extracted.
  virtual void send_migration(std::size_t src, Side toward,
                              ode::MigrationPayload payload) = 0;

  /// Posts a convergence-detection control message. `deliver` must run in
  /// the destination's execution context after the driver's control
  /// latency: at the scheduled virtual delivery time for the simulated
  /// driver, at the destination thread's next control drain for the
  /// threaded one. The driver accounts message counts/bytes.
  virtual void post_control(std::size_t src, std::size_t dst,
                            std::function<void()> deliver) = 0;

  // ---- Capability hooks (multi-process transports) --------------------

  /// True when this transport ships detection control as plain-data
  /// ControlFrames to remote ranks instead of in-process closures. The
  /// in-process drivers (simulated, threaded, model checker) keep the
  /// closure path and share one DetectionProtocol instance; a
  /// frame-delivering transport (the socket backend) runs one protocol
  /// instance per process and routes every control message — including
  /// self-addressed ones — through send_control_frame.
  virtual bool delivers_control_frames() const { return false; }

  /// Ships `frame` to rank `dst`; the receiving driver must hand it to its
  /// local DetectionProtocol::handle_control in `dst`'s execution context.
  /// Only called when delivers_control_frames() is true.
  virtual void send_control_frame(std::size_t /*src*/, std::size_t /*dst*/,
                                  const ControlFrame& /*frame*/) {
    throw std::logic_error(
        "Transport::send_control_frame: transport does not deliver "
        "control frames");
  }
};

class ClockModel {
 public:
  virtual ~ClockModel() = default;

  /// Current time in seconds: virtual time for the discrete-event driver,
  /// wall seconds since run start for the threaded driver.
  virtual double now() const = 0;

  /// Seconds that `work` work-units starting at `start` occupy on
  /// processor `rank` while it holds `resident` components. Predictive
  /// models (the simulated grid) compute this; measuring models (wall
  /// clock) return a negative sentinel and the driver uses the measured
  /// elapsed time instead.
  virtual double work_to_seconds(std::size_t rank, double work, double start,
                                 double resident) = 0;
};

}  // namespace aiac::algo
