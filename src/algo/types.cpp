#include "algo/types.hpp"

namespace aiac::algo {

std::string to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSISC: return "SISC";
    case Scheme::kSIAC: return "SIAC";
    case Scheme::kAIAC: return "AIAC";
  }
  return "?";
}

std::string to_string(DetectionMode mode) {
  switch (mode) {
    case DetectionMode::kOracle: return "oracle";
    case DetectionMode::kCoordinator: return "coordinator";
    case DetectionMode::kTokenRing: return "token-ring";
  }
  return "?";
}

std::string to_string(InitialPartition partition) {
  switch (partition) {
    case InitialPartition::kEven: return "even";
    case InitialPartition::kSpeedWeighted: return "speed-weighted";
  }
  return "?";
}

std::string to_string(Side side) {
  return side == Side::kLeft ? "left" : "right";
}

}  // namespace aiac::algo
