// Null-safe trace emission helpers: one place that turns algorithm events
// into trace records so both drivers produce structurally identical traces
// (the threaded engine used to emit only fault records; it now shares the
// iteration/message/migration paths with the simulator).
#pragma once

#include <cstddef>
#include <utility>

#include "runtime/fault_injector.hpp"
#include "trace/execution_trace.hpp"

namespace aiac::algo {

inline void emit_iteration(trace::ExecutionTrace* trace, std::size_t rank,
                           std::size_t iteration, double start, double end,
                           double work, double residual,
                           std::size_t components) {
  if (!trace) return;
  trace->record_iteration(
      {rank, iteration, start, end, work, residual, components});
}

inline void emit_message(trace::ExecutionTrace* trace, std::size_t src,
                         std::size_t dst, double send_time,
                         double receive_time, std::size_t bytes,
                         trace::MessageKind kind) {
  if (!trace) return;
  trace->record_message({src, dst, send_time, receive_time, bytes, kind});
}

inline void emit_migration(trace::ExecutionTrace* trace, std::size_t src,
                           std::size_t dst, double time,
                           std::size_t components) {
  if (!trace) return;
  trace->record_migration({src, dst, time, components});
}

inline void emit_fault_log(trace::ExecutionTrace* trace,
                           const runtime::FaultLog& log) {
  if (!trace) return;
  for (const auto& event : log.snapshot()) {
    trace::FaultRecord record;
    record.source = event.source;
    record.time = event.time;
    record.kind = runtime::to_string(event.kind);
    record.magnitude = event.magnitude;
    record.sequence = event.sequence;
    trace->record_fault(std::move(record));
  }
}

}  // namespace aiac::algo
