// A virtual grid: machines + network + the mapping from logical process
// ranks (the linear chain of the AIAC algorithm) to machines. The paper
// chooses an *irregular* logical organization for its grid experiment so
// that chain neighbors often sit on different sites.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "grid/machine.hpp"
#include "grid/network.hpp"
#include "util/rng.hpp"

namespace aiac::grid {

class Grid {
 public:
  Grid(std::vector<std::unique_ptr<Machine>> machines, NetworkModel network,
       std::vector<std::size_t> rank_to_machine, util::Rng net_rng);

  std::size_t process_count() const noexcept { return rank_to_machine_.size(); }
  std::size_t machine_count() const noexcept { return machines_.size(); }

  Machine& machine_of(std::size_t rank);
  const std::string& machine_name_of(std::size_t rank) const;
  std::size_t machine_index_of(std::size_t rank) const;
  std::size_t site_of_rank(std::size_t rank) const;

  /// Virtual duration for process `rank` to execute `work` units at t,
  /// with `resident` components held in memory (memory-pressure model).
  double compute_duration(std::size_t rank, double work, des::SimTime t,
                          double resident = 0.0);

  /// Virtual delay for `bytes` from process `src` to process `dst` at t.
  double message_delay(std::size_t src, std::size_t dst, std::size_t bytes,
                       des::SimTime t);

  const NetworkModel& network() const noexcept { return network_; }
  NetworkModel& network() noexcept { return network_; }

 private:
  std::vector<std::unique_ptr<Machine>> machines_;
  NetworkModel network_;
  std::vector<std::size_t> rank_to_machine_;
  util::Rng net_rng_;
};

/// Parameters for homogeneous cluster construction (paper Figure 5 setup).
struct HomogeneousClusterParams {
  std::size_t processes = 8;
  double machine_speed = 1000.0;  // work units / second
  LinkParams lan = fast_ethernet_lan();
  /// Background multi-user load on cluster nodes. The paper's cluster is
  /// "local homogeneous"; mild sharing is the default lab situation their
  /// averages over series of executions reflect. Set to false for a fully
  /// dedicated machine model.
  bool multi_user = true;
  OnOffAvailability::Params load = {};
  /// Memory capacity in components per node (0 = unlimited).
  MemoryPressure memory = {};
  std::uint64_t seed = 42;
};

/// One process per machine, all identical, single site.
std::unique_ptr<Grid> make_homogeneous_cluster(
    const HomogeneousClusterParams& params);

/// Parameters for the 3-site heterogeneous grid of Table 1.
struct HeterogeneousGridParams {
  std::size_t machines = 15;
  std::size_t sites = 3;
  /// Speed spread: slowest=base, fastest=base*speed_spread (the paper's
  /// PII 400MHz .. Athlon 1.4GHz is a ~3.5x spread).
  double base_speed = 400.0;
  double speed_spread = 3.5;
  LinkParams lan = fast_ethernet_lan();
  LinkParams wan = campus_wan();
  bool multi_user = true;
  OnOffAvailability::Params load = {};
  /// Memory capacity in components for the *slowest* node; capacity
  /// scales linearly with machine speed (fast 2003 machines also had
  /// more RAM). 0 disables the model.
  MemoryPressure memory = {};
  /// Irregular logical organization: ranks are assigned to machines in a
  /// round-robin over sites, so most chain neighbors are on distinct sites
  /// ("chosen irregular in order to get a grid computing context not
  /// favorable to load balancing").
  bool irregular_mapping = true;
  std::uint64_t seed = 42;
};

std::unique_ptr<Grid> make_heterogeneous_grid(
    const HeterogeneousGridParams& params);

}  // namespace aiac::grid
