#include "grid/network.hpp"

#include <cmath>

namespace aiac::grid {

LinkParams fast_ethernet_lan() {
  return LinkParams{.latency = 1e-4, .bandwidth = 12.5e6, .jitter_sigma = 0.05};
}

LinkParams campus_wan() {
  return LinkParams{.latency = 15e-3, .bandwidth = 1.0e6, .jitter_sigma = 0.4};
}

LinkParams loaded_wan() {
  return LinkParams{.latency = 40e-3, .bandwidth = 250e3, .jitter_sigma = 0.6};
}

NetworkModel::NetworkModel(std::vector<std::size_t> site_of,
                           LinkParams intra_site, LinkParams inter_site)
    : site_of_(std::move(site_of)), intra_(intra_site), inter_(inter_site) {
  if (site_of_.empty())
    throw std::invalid_argument("NetworkModel: no machines");
}

std::size_t NetworkModel::site_of(std::size_t machine) const {
  if (machine >= site_of_.size())
    throw std::out_of_range("NetworkModel::site_of");
  return site_of_[machine];
}

void NetworkModel::set_pair_override(std::size_t src, std::size_t dst,
                                     LinkParams params) {
  if (src >= site_of_.size() || dst >= site_of_.size())
    throw std::out_of_range("NetworkModel::set_pair_override");
  for (auto& o : overrides_) {
    if (o.src == src && o.dst == dst) {
      o.params = params;
      return;
    }
  }
  overrides_.push_back({src, dst, params});
}

const LinkParams& NetworkModel::link(std::size_t src, std::size_t dst) const {
  for (const auto& o : overrides_)
    if (o.src == src && o.dst == dst) return o.params;
  return site_of_.at(src) == site_of_.at(dst) ? intra_ : inter_;
}

double NetworkModel::transfer_time(std::size_t src, std::size_t dst,
                                   std::size_t bytes, des::SimTime,
                                   util::Rng& rng) const {
  if (src >= site_of_.size() || dst >= site_of_.size())
    throw std::out_of_range("NetworkModel::transfer_time");
  if (src == dst) return 0.0;
  const LinkParams& p = link(src, dst);
  double time = p.latency + static_cast<double>(bytes) / p.bandwidth;
  if (p.jitter_sigma > 0.0) {
    // Lognormal multiplicative fluctuation with unit median.
    time *= std::exp(rng.normal(0.0, p.jitter_sigma));
  }
  return time;
}

}  // namespace aiac::grid
