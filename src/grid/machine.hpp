// Machine model: per-node compute speed plus a time-varying availability
// trace modelling multi-user/multi-task background load (the paper's
// heterogeneous machines "were subject to a multi-users utilization
// directly influencing their load").
//
// Speeds are expressed in abstract work units per virtual second; the ODE
// engine charges one work unit per scalar Newton iteration, so a machine
// with speed s completes w Newton iterations in w / (s * availability)
// virtual seconds.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "util/rng.hpp"

namespace aiac::grid {

/// Fraction of a machine's peak speed available to our process at a given
/// virtual time; in (0, 1]. Implementations must be deterministic
/// functions of (construction parameters, seed, t).
class AvailabilityModel {
 public:
  virtual ~AvailabilityModel() = default;
  /// Availability at virtual time t >= 0.
  virtual double availability(des::SimTime t) = 0;
};

/// Always-available machine (dedicated node).
class ConstantAvailability final : public AvailabilityModel {
 public:
  explicit ConstantAvailability(double value = 1.0);
  double availability(des::SimTime t) override;

 private:
  double value_;
};

/// Piecewise-constant lazily generated trace; base for stochastic models.
/// Segments are produced on demand and cached, so queries at arbitrary
/// times are consistent and reproducible.
class PiecewiseTrace : public AvailabilityModel {
 public:
  double availability(des::SimTime t) final;

 protected:
  explicit PiecewiseTrace(util::Rng rng, double initial_value);
  /// Produces the next segment: duration (> 0) and its availability value.
  virtual std::pair<double, double> next_segment(double previous_value,
                                                 util::Rng& rng) = 0;

 private:
  struct Segment {
    des::SimTime start;
    double value;
  };
  util::Rng rng_;
  std::vector<Segment> segments_;
  des::SimTime horizon_ = 0.0;  // trace generated up to this time
};

/// Renewal on/off process: the machine alternates between "dedicated"
/// periods (availability 1) and "shared" periods where other users take a
/// slice (availability `loaded_fraction`). Period lengths are exponential.
class OnOffAvailability final : public PiecewiseTrace {
 public:
  struct Params {
    double mean_idle_period = 120.0;   // seconds at availability 1
    double mean_busy_period = 60.0;    // seconds at loaded_fraction
    double loaded_fraction = 0.5;      // availability when other users run
  };
  OnOffAvailability(Params params, util::Rng rng);

 protected:
  std::pair<double, double> next_segment(double previous_value,
                                         util::Rng& rng) override;

 private:
  Params params_;
};

/// Mean-reverting bounded random walk, re-sampled every `step_period`
/// seconds: models gradually drifting background load.
class RandomWalkAvailability final : public PiecewiseTrace {
 public:
  struct Params {
    double mean = 0.8;          // long-run availability
    double volatility = 0.1;    // per-step normal kick
    double reversion = 0.3;     // pull toward the mean per step
    double min = 0.2;
    double max = 1.0;
    double step_period = 30.0;  // seconds between re-samples
  };
  RandomWalkAvailability(Params params, util::Rng rng);

 protected:
  std::pair<double, double> next_segment(double previous_value,
                                         util::Rng& rng) override;

 private:
  Params params_;
};

/// Optional memory-pressure model: a machine holding more resident state
/// than its capacity starts paging and slows down superlinearly. 2003-era
/// grid nodes had wildly different memory sizes; an even component
/// distribution could push the small machines into swap — one hypothesis
/// for the very large balancing gains the paper reports (EXPERIMENTS.md).
struct MemoryPressure {
  /// Resident capacity in components; <= 0 disables the model.
  double capacity = 0.0;
  /// Slowdown slope beyond capacity: speed /= 1 + penalty*(excess ratio).
  double penalty = 8.0;
};

/// A compute node of the (virtual) grid.
class Machine {
 public:
  /// `speed`: peak work units per second (relative machine power; the
  /// paper's nodes range from a PII 400MHz to an Athlon 1.4GHz, i.e. a
  /// ~3.5x spread).
  Machine(std::string name, double speed,
          std::unique_ptr<AvailabilityModel> availability,
          MemoryPressure memory = {});

  const std::string& name() const noexcept { return name_; }
  double peak_speed() const noexcept { return speed_; }
  const MemoryPressure& memory() const noexcept { return memory_; }

  /// Instantaneous effective speed at time t with `resident` components
  /// held in memory.
  double effective_speed(des::SimTime t, double resident = 0.0);

  /// Virtual seconds needed to execute `work` units starting at time t.
  /// Availability is sampled at the start of the burst (bursts in this
  /// codebase are single inner iterations, short relative to load shifts).
  double compute_duration(double work, des::SimTime t, double resident = 0.0);

 private:
  std::string name_;
  double speed_;
  std::unique_ptr<AvailabilityModel> availability_;
  MemoryPressure memory_;
};

}  // namespace aiac::grid
