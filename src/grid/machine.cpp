#include "grid/machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aiac::grid {

ConstantAvailability::ConstantAvailability(double value) : value_(value) {
  if (!(value > 0.0 && value <= 1.0))
    throw std::invalid_argument("availability must be in (0, 1]");
}

double ConstantAvailability::availability(des::SimTime) { return value_; }

PiecewiseTrace::PiecewiseTrace(util::Rng rng, double initial_value)
    : rng_(rng) {
  segments_.push_back({0.0, initial_value});
}

double PiecewiseTrace::availability(des::SimTime t) {
  if (t < 0.0) throw std::invalid_argument("availability: negative time");
  while (horizon_ <= t) {
    auto [duration, value] = next_segment(segments_.back().value, rng_);
    if (!(duration > 0.0))
      throw std::logic_error("PiecewiseTrace: non-positive segment");
    horizon_ += duration;
    segments_.push_back({horizon_, value});
  }
  // Binary search for the segment containing t: last start <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](des::SimTime time, const Segment& s) { return time < s.start; });
  return std::prev(it)->value;
}

OnOffAvailability::OnOffAvailability(Params params, util::Rng rng)
    : PiecewiseTrace(rng, 1.0), params_(params) {
  if (!(params.loaded_fraction > 0.0 && params.loaded_fraction <= 1.0))
    throw std::invalid_argument("loaded_fraction must be in (0, 1]");
  if (!(params.mean_idle_period > 0.0) || !(params.mean_busy_period > 0.0))
    throw std::invalid_argument("mean periods must be positive");
}

std::pair<double, double> OnOffAvailability::next_segment(
    double previous_value, util::Rng& rng) {
  const bool was_idle = previous_value >= 1.0;
  if (was_idle) {
    // Entering a shared period.
    return {rng.exponential(1.0 / params_.mean_busy_period),
            params_.loaded_fraction};
  }
  return {rng.exponential(1.0 / params_.mean_idle_period), 1.0};
}

RandomWalkAvailability::RandomWalkAvailability(Params params, util::Rng rng)
    : PiecewiseTrace(rng, std::clamp(params.mean, params.min, params.max)),
      params_(params) {
  if (!(params.min > 0.0 && params.min <= params.max && params.max <= 1.0))
    throw std::invalid_argument("random walk bounds must satisfy 0<min<=max<=1");
  if (!(params.step_period > 0.0))
    throw std::invalid_argument("step_period must be positive");
}

std::pair<double, double> RandomWalkAvailability::next_segment(
    double previous_value, util::Rng& rng) {
  const double pulled =
      previous_value + params_.reversion * (params_.mean - previous_value);
  const double kicked = pulled + rng.normal(0.0, params_.volatility);
  return {params_.step_period, std::clamp(kicked, params_.min, params_.max)};
}

Machine::Machine(std::string name, double speed,
                 std::unique_ptr<AvailabilityModel> availability,
                 MemoryPressure memory)
    : name_(std::move(name)),
      speed_(speed),
      availability_(std::move(availability)),
      memory_(memory) {
  if (!(speed > 0.0)) throw std::invalid_argument("machine speed must be > 0");
  if (!availability_)
    throw std::invalid_argument("machine needs an availability model");
}

double Machine::effective_speed(des::SimTime t, double resident) {
  double speed = speed_ * availability_->availability(t);
  if (memory_.capacity > 0.0 && resident > memory_.capacity) {
    const double excess = resident / memory_.capacity - 1.0;
    speed /= 1.0 + memory_.penalty * excess;
  }
  return speed;
}

double Machine::compute_duration(double work, des::SimTime t,
                                 double resident) {
  if (work < 0.0) throw std::invalid_argument("negative work");
  if (work == 0.0) return 0.0;
  return work / effective_speed(t, resident);
}

}  // namespace aiac::grid
