#include "grid/grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace aiac::grid {

Grid::Grid(std::vector<std::unique_ptr<Machine>> machines,
           NetworkModel network, std::vector<std::size_t> rank_to_machine,
           util::Rng net_rng)
    : machines_(std::move(machines)),
      network_(std::move(network)),
      rank_to_machine_(std::move(rank_to_machine)),
      net_rng_(net_rng) {
  if (machines_.empty()) throw std::invalid_argument("Grid: no machines");
  if (network_.machine_count() != machines_.size())
    throw std::invalid_argument("Grid: network size mismatch");
  for (std::size_t m : rank_to_machine_)
    if (m >= machines_.size())
      throw std::invalid_argument("Grid: rank mapped to unknown machine");
}

Machine& Grid::machine_of(std::size_t rank) {
  return *machines_.at(rank_to_machine_.at(rank));
}

const std::string& Grid::machine_name_of(std::size_t rank) const {
  return machines_.at(rank_to_machine_.at(rank))->name();
}

std::size_t Grid::machine_index_of(std::size_t rank) const {
  return rank_to_machine_.at(rank);
}

std::size_t Grid::site_of_rank(std::size_t rank) const {
  return network_.site_of(rank_to_machine_.at(rank));
}

double Grid::compute_duration(std::size_t rank, double work, des::SimTime t,
                              double resident) {
  return machine_of(rank).compute_duration(work, t, resident);
}

double Grid::message_delay(std::size_t src, std::size_t dst,
                           std::size_t bytes, des::SimTime t) {
  return network_.transfer_time(machine_index_of(src), machine_index_of(dst),
                                bytes, t, net_rng_);
}

std::unique_ptr<Grid> make_homogeneous_cluster(
    const HomogeneousClusterParams& params) {
  if (params.processes == 0)
    throw std::invalid_argument("cluster needs at least one process");
  util::Rng root(params.seed);
  std::vector<std::unique_ptr<Machine>> machines;
  machines.reserve(params.processes);
  for (std::size_t i = 0; i < params.processes; ++i) {
    std::unique_ptr<AvailabilityModel> load;
    if (params.multi_user) {
      load = std::make_unique<OnOffAvailability>(params.load,
                                                 root.split(i).split("load"));
    } else {
      load = std::make_unique<ConstantAvailability>(1.0);
    }
    machines.push_back(std::make_unique<Machine>(
        "node" + std::to_string(i), params.machine_speed, std::move(load),
        params.memory));
  }
  NetworkModel net(std::vector<std::size_t>(params.processes, 0), params.lan,
                   params.lan);
  std::vector<std::size_t> mapping(params.processes);
  for (std::size_t i = 0; i < params.processes; ++i) mapping[i] = i;
  return std::make_unique<Grid>(std::move(machines), std::move(net),
                                std::move(mapping), root.split("net"));
}

std::unique_ptr<Grid> make_heterogeneous_grid(
    const HeterogeneousGridParams& params) {
  if (params.machines == 0 || params.sites == 0)
    throw std::invalid_argument("grid needs machines and sites");
  if (params.speed_spread < 1.0)
    throw std::invalid_argument("speed_spread must be >= 1");
  util::Rng root(params.seed);
  util::Rng speed_rng = root.split("speeds");

  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<std::size_t> site_of(params.machines);
  machines.reserve(params.machines);
  for (std::size_t i = 0; i < params.machines; ++i) {
    // Sites hold contiguous blocks of machines (machines of one site live
    // in one lab); speeds spread uniformly across the range with the
    // extremes guaranteed to appear.
    site_of[i] = i * params.sites / params.machines;
    double factor;
    if (i == 0) {
      factor = 1.0;
    } else if (i + 1 == params.machines) {
      factor = params.speed_spread;
    } else {
      factor = speed_rng.uniform(1.0, params.speed_spread);
    }
    std::unique_ptr<AvailabilityModel> load;
    if (params.multi_user) {
      load = std::make_unique<OnOffAvailability>(params.load,
                                                 root.split(i).split("load"));
    } else {
      load = std::make_unique<ConstantAvailability>(1.0);
    }
    MemoryPressure memory = params.memory;
    if (memory.capacity > 0.0) memory.capacity *= factor;
    machines.push_back(std::make_unique<Machine>(
        "site" + std::to_string(site_of[i]) + "-m" + std::to_string(i),
        params.base_speed * factor, std::move(load), memory));
  }
  NetworkModel net(std::move(site_of), params.lan, params.wan);

  std::vector<std::size_t> mapping;
  mapping.reserve(params.machines);
  if (params.irregular_mapping) {
    // Interleave sites: take one machine from each site in turn, so
    // consecutive ranks (chain neighbors) land on distinct sites.
    std::vector<std::vector<std::size_t>> by_site(params.sites);
    for (std::size_t m = 0; m < params.machines; ++m)
      by_site[m * params.sites / params.machines].push_back(m);
    for (std::size_t round = 0; mapping.size() < params.machines; ++round)
      for (const auto& site_machines : by_site)
        if (round < site_machines.size())
          mapping.push_back(site_machines[round]);
  } else {
    for (std::size_t r = 0; r < params.machines; ++r) mapping.push_back(r);
  }
  return std::make_unique<Grid>(std::move(machines), std::move(net),
                                std::move(mapping), root.split("net"));
}

}  // namespace aiac::grid
