// Network model: point-to-point message delays between machines.
//
// A message from machine a to machine b takes
//     latency + bytes / bandwidth
// multiplied by a per-message lognormal fluctuation factor — the paper's
// grid links are networks "between which the speed of the network may
// sharply vary". Machines are grouped into sites; a link is intra-site
// (LAN) or inter-site (WAN) and each class has its own parameters.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "util/rng.hpp"

namespace aiac::grid {

struct LinkParams {
  double latency = 1e-4;        // seconds (one-way)
  double bandwidth = 100e6;     // bytes per second
  double jitter_sigma = 0.0;    // lognormal sigma; 0 = deterministic
};

/// Common presets.
LinkParams fast_ethernet_lan();   // ~100 Mb/s LAN of the paper's cluster era
LinkParams campus_wan();          // inter-site link, higher latency, jittery
LinkParams loaded_wan();          // heavily loaded / slow inter-site link

class NetworkModel {
 public:
  /// `site_of[m]` gives the site index of machine m.
  NetworkModel(std::vector<std::size_t> site_of, LinkParams intra_site,
               LinkParams inter_site);

  std::size_t machine_count() const noexcept { return site_of_.size(); }
  std::size_t site_of(std::size_t machine) const;

  /// Overrides the link parameters for one ordered machine pair.
  void set_pair_override(std::size_t src, std::size_t dst, LinkParams params);

  const LinkParams& link(std::size_t src, std::size_t dst) const;

  /// Delay for a message of `bytes` from src to dst sent at time t.
  /// Messages within one machine are free. The fluctuation factor draws
  /// from the model's own RNG stream, so delays are reproducible given the
  /// construction seed and the global order of sends (which the
  /// deterministic simulator fixes).
  double transfer_time(std::size_t src, std::size_t dst, std::size_t bytes,
                       des::SimTime t, util::Rng& rng) const;

 private:
  std::vector<std::size_t> site_of_;
  LinkParams intra_;
  LinkParams inter_;
  struct Override {
    std::size_t src;
    std::size_t dst;
    LinkParams params;
  };
  std::vector<Override> overrides_;
};

}  // namespace aiac::grid
